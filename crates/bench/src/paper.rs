//! The paper's published numbers (Zuo et al., PLDI 2021), typed for
//! side-by-side printing in the harness binaries and EXPERIMENTS.md.

/// Benchmark order used by every table (the paper's Table 1 order).
pub const BENCHMARKS: [&str; 9] = [
    "avrora", "batik", "fop", "h2", "jython", "luindex", "lusearch", "pmd", "sunflow",
];

/// Table 1: subject characteristics `(version, LoC, methods, classes,
/// threaded)`.
pub const TABLE1: [(&str, &str, u32, u32, u32, &str); 9] = [
    ("avrora", "1.7.110", 70_117, 9_501, 1_828, "single"),
    ("batik", "1.7", 195_232, 2_430, 15_211, "single"),
    ("fop", "0.95", 105_889, 1_314, 9_968, "single"),
    ("h2", "1.2.121", 119_693, 471, 7_026, "multiple"),
    ("jython", "2.5.1", 209_016, 3_288, 31_201, "single"),
    ("luindex", "2.4.1", 39_864, 560, 4_365, "single"),
    ("lusearch", "2.4.1", 40_194, 563, 4_371, "multiple"),
    ("pmd", "4.2.5", 60_472, 727, 5_055, "multiple"),
    ("sunflow", "0.07.2", 21_962, 255, 1_762, "single"),
];

/// One Table 2 row: slowdowns (×) for JPortal, SC, PF, CF, HM, xprof,
/// JProfiler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// JPortal slowdown.
    pub jportal: f64,
    /// Statement-coverage instrumentation slowdown.
    pub sc: f64,
    /// Path-frequency instrumentation slowdown.
    pub pf: f64,
    /// Control-flow instrumentation slowdown.
    pub cf: f64,
    /// Hot-method instrumentation slowdown.
    pub hm: f64,
    /// xprof sampling slowdown.
    pub xprof: f64,
    /// JProfiler sampling slowdown.
    pub jprofiler: f64,
}

/// Table 2 as published.
pub const TABLE2: [Table2Row; 9] = [
    Table2Row {
        name: "avrora",
        jportal: 1.154,
        sc: 29.940,
        pf: 43.777,
        cf: 3555.073,
        hm: 11.038,
        xprof: 1.059,
        jprofiler: 1.512,
    },
    Table2Row {
        name: "batik",
        jportal: 1.084,
        sc: 1.603,
        pf: 1.776,
        cf: 46.322,
        hm: 2.322,
        xprof: 1.262,
        jprofiler: 1.331,
    },
    Table2Row {
        name: "fop",
        jportal: 1.044,
        sc: 2.182,
        pf: 1.947,
        cf: 41.631,
        hm: 1.969,
        xprof: 1.309,
        jprofiler: 1.221,
    },
    Table2Row {
        name: "h2",
        jportal: 1.128,
        sc: 10.114,
        pf: 13.507,
        cf: 1266.685,
        hm: 50.840,
        xprof: 1.056,
        jprofiler: 1.140,
    },
    Table2Row {
        name: "jython",
        jportal: 1.165,
        sc: 3.600,
        pf: 7.113,
        cf: 502.163,
        hm: 14.657,
        xprof: 1.052,
        jprofiler: 1.519,
    },
    Table2Row {
        name: "luindex",
        jportal: 1.041,
        sc: 2.027,
        pf: 2.403,
        cf: 80.776,
        hm: 3.817,
        xprof: 1.115,
        jprofiler: 1.272,
    },
    Table2Row {
        name: "lusearch",
        jportal: 1.162,
        sc: 13.979,
        pf: 24.093,
        cf: 1706.262,
        hm: 8.203,
        xprof: 1.168,
        jprofiler: 1.509,
    },
    Table2Row {
        name: "pmd",
        jportal: 1.086,
        sc: 1.140,
        pf: 1.258,
        cf: 5.320,
        hm: 2.040,
        xprof: 1.063,
        jprofiler: 1.822,
    },
    Table2Row {
        name: "sunflow",
        jportal: 1.156,
        sc: 6.343,
        pf: 10.767,
        cf: 887.897,
        hm: 14.564,
        xprof: 1.151,
        jprofiler: 1.464,
    },
];

/// Figure 7: JPortal's overall end-to-end accuracy per benchmark.
pub const FIGURE7: [(&str, f64); 9] = [
    ("avrora", 0.810),
    ("batik", 0.783),
    ("fop", 0.870),
    ("h2", 0.713),
    ("jython", 0.692),
    ("luindex", 0.913),
    ("lusearch", 0.819),
    ("pmd", 0.859),
    ("sunflow", 0.747),
];

/// One Table 3 cell set for a `(benchmark, buffer)` pair, as fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Cell {
    /// Benchmark name.
    pub name: &'static str,
    /// Buffer label ("256M" | "128M" | "64M").
    pub buffer: &'static str,
    /// Percent of missing data.
    pub pmd: f64,
    /// Percent recovered.
    pub pr: f64,
    /// Recovery accuracy.
    pub ra: f64,
    /// Percent of data captured.
    pub pdc: f64,
    /// Percent decoded.
    pub pd: f64,
    /// Decoding accuracy.
    pub da: f64,
}

/// Table 3 as published (batik, h2, sunflow × 256M/128M/64M).
pub const TABLE3: [Table3Cell; 9] = [
    Table3Cell {
        name: "batik",
        buffer: "256M",
        pmd: 0.0,
        pr: 0.0,
        ra: 0.0,
        pdc: 1.0,
        pd: 0.854,
        da: 0.854,
    },
    Table3Cell {
        name: "batik",
        buffer: "128M",
        pmd: 0.2223,
        pr: 0.1179,
        ra: 0.5305,
        pdc: 0.7777,
        pd: 0.6653,
        da: 0.8555,
    },
    Table3Cell {
        name: "batik",
        buffer: "64M",
        pmd: 0.3975,
        pr: 0.1644,
        ra: 0.4136,
        pdc: 0.6025,
        pd: 0.5142,
        da: 0.8534,
    },
    Table3Cell {
        name: "h2",
        buffer: "256M",
        pmd: 0.1930,
        pr: 0.1088,
        ra: 0.5635,
        pdc: 0.8070,
        pd: 0.6118,
        da: 0.7581,
    },
    Table3Cell {
        name: "h2",
        buffer: "128M",
        pmd: 0.2803,
        pr: 0.1695,
        ra: 0.6048,
        pdc: 0.7197,
        pd: 0.5436,
        da: 0.7553,
    },
    Table3Cell {
        name: "h2",
        buffer: "64M",
        pmd: 0.5428,
        pr: 0.2914,
        ra: 0.5369,
        pdc: 0.4572,
        pd: 0.3438,
        da: 0.7520,
    },
    Table3Cell {
        name: "sunflow",
        buffer: "256M",
        pmd: 0.1040,
        pr: 0.0505,
        ra: 0.4852,
        pdc: 0.8960,
        pd: 0.7494,
        da: 0.8364,
    },
    Table3Cell {
        name: "sunflow",
        buffer: "128M",
        pmd: 0.2267,
        pr: 0.0926,
        ra: 0.4086,
        pdc: 0.7733,
        pd: 0.6543,
        da: 0.8461,
    },
    Table3Cell {
        name: "sunflow",
        buffer: "64M",
        pmd: 0.4504,
        pr: 0.1513,
        ra: 0.3359,
        pdc: 0.5496,
        pd: 0.4574,
        da: 0.8322,
    },
];

/// Table 4: hot-method intersections with the instrumented top-10
/// `(xprof, jprofiler, jportal)`.
pub const TABLE4: [(&str, u32, u32, u32); 9] = [
    ("avrora", 2, 4, 7),
    ("batik", 0, 5, 6),
    ("fop", 1, 6, 8),
    ("h2", 0, 4, 6),
    ("jython", 1, 1, 6),
    ("luindex", 1, 2, 7),
    ("lusearch", 4, 4, 6),
    ("pmd", 4, 5, 7),
    ("sunflow", 1, 4, 6),
];

/// Table 5: `(baseline trace MB, baseline decode min, jportal trace MB,
/// jportal decode min, jportal recovery min — NaN when no data loss)`.
pub const TABLE5: [(&str, f64, f64, f64, f64, f64); 9] = [
    ("avrora", 8301.4, 113.2, 773.4, 20.4, f64::NAN),
    ("batik", 176.4, 4.2, 1197.6, 4.8, 1.0),
    ("fop", 109.1, 1.7, 520.7, 3.5, f64::NAN),
    ("h2", 14946.7, 198.9, 3067.7, 33.1, 16.7),
    ("jython", 1735.0, 19.7, 829.8, 12.5, f64::NAN),
    ("luindex", 81.4, 1.7, 192.7, 1.6, f64::NAN),
    ("lusearch", 1174.8, 20.1, 1067.2, 6.1, f64::NAN),
    ("pmd", 3.2, 0.053, 174.9, 1.1, f64::NAN),
    ("sunflow", 1808.6, 33.5, 1052.3, 10.9, 6.6),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_all_nine_benchmarks_in_order() {
        for (i, name) in BENCHMARKS.iter().enumerate() {
            assert_eq!(TABLE1[i].0, *name);
            assert_eq!(TABLE2[i].name, *name);
            assert_eq!(FIGURE7[i].0, *name);
            assert_eq!(TABLE4[i].0, *name);
            assert_eq!(TABLE5[i].0, *name);
        }
        for c in &TABLE3 {
            assert!(["batik", "h2", "sunflow"].contains(&c.name));
        }
    }

    #[test]
    fn published_invariants_hold() {
        // The paper's headline: overall accuracy ≈ 80%.
        let avg: f64 = FIGURE7.iter().map(|&(_, a)| a).sum::<f64>() / 9.0;
        assert!((avg - 0.80).abs() < 0.02);
        // JPortal's overhead is 4–16.5%.
        for r in &TABLE2 {
            assert!(r.jportal >= 1.04 && r.jportal <= 1.17);
            // CF is always the most expensive instrumentation.
            assert!(r.cf > r.pf && r.cf > r.sc);
        }
        // Table 3: bigger buffers lose less.
        for name in ["batik", "h2", "sunflow"] {
            let cells: Vec<&Table3Cell> = TABLE3.iter().filter(|c| c.name == name).collect();
            assert!(cells[0].pmd <= cells[1].pmd);
            assert!(cells[1].pmd <= cells[2].pmd);
        }
        // Table 4: JPortal beats both samplers everywhere.
        for &(_, xp, jp, jpo) in &TABLE4 {
            assert!(jpo > xp && jpo >= jp);
        }
    }
}
