//! Evaluation harness for the JPortal reproduction.
//!
//! One binary per table/figure of the paper (`table1` … `table5`,
//! `figure7`), each printing the measured values next to the paper's
//! published numbers. Shared pieces:
//!
//! * [`paper`] — the published numbers (Tables 1–5, Figure 7), typed;
//! * [`harness`] — workload execution at evaluation scale, buffer/drain
//!   calibration, and table formatting.

pub mod harness;
pub mod paper;
