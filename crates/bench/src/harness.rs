//! Shared evaluation-harness machinery.

use std::time::{Duration, Instant};

use jportal_core::accuracy::{breakdown, AccuracyBreakdown};
use jportal_core::{JPortal, JPortalReport};
use jportal_jvm::runtime::{Jvm, JvmConfig};
use jportal_jvm::RunResult;
use jportal_workloads::Workload;

/// Workload scale used by the evaluation binaries (tests use 1).
pub const EVAL_SCALE: u32 = 5;

/// Builds the JVM configuration for a workload run.
///
/// `buffer`/`drain` control the PT ring (`None` = effectively unbounded:
/// the lossless configuration used for overhead and Figure 7 baselines).
pub fn jvm_config(
    w: &Workload,
    tracing: bool,
    buffer: Option<usize>,
    drain: Option<u64>,
) -> JvmConfig {
    JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        tracing,
        pt_buffer_capacity: buffer.unwrap_or(1 << 26),
        drain_bytes_per_kilocycle: drain.unwrap_or(1 << 20),
        record_truth_trace: tracing,
        // The paper's JIT metadata is "precise enough" but not perfect:
        // loop transformations and inlining blur a slice of the mapping
        // (Figure 7 discussion). One record in ten lost reproduces the
        // reported decode-accuracy band.
        jit: jportal_jvm::JitConfig {
            debug_degrade: 0.10,
            ..jportal_jvm::JitConfig::default()
        },
        ..JvmConfig::default()
    }
}

/// Runs the workload without tracing (the overhead baseline).
pub fn run_baseline(w: &Workload) -> RunResult {
    Jvm::new(jvm_config(w, false, None, None)).run_threads(&w.program, &w.threads)
}

/// Runs the workload under PT tracing.
pub fn run_traced(w: &Workload, buffer: Option<usize>, drain: Option<u64>) -> RunResult {
    Jvm::new(jvm_config(w, true, buffer, drain)).run_threads(&w.program, &w.threads)
}

/// Runs JPortal's offline analysis, returning the report and the wall
/// times of (decode+reconstruct+recover) as one figure plus the recovery
/// share approximated by hole count weighting.
pub fn analyze(w: &Workload, result: &RunResult) -> (JPortalReport, Duration) {
    let traces = result.traces.as_ref().expect("traced run");
    let jportal = JPortal::new(&w.program);
    let start = Instant::now();
    let report = jportal.analyze(traces, &result.archive);
    (report, start.elapsed())
}

/// Full traced+analyzed run with accuracy scoring.
pub struct ScoredRun {
    /// The JVM run.
    pub result: RunResult,
    /// JPortal's reconstruction.
    pub report: JPortalReport,
    /// Offline analysis wall time.
    pub analysis_time: Duration,
    /// Accuracy breakdown against ground truth.
    pub accuracy: AccuracyBreakdown,
    /// Fraction of produced trace bytes lost in the ring buffers.
    pub byte_loss: f64,
}

/// Runs, analyzes and scores one workload.
pub fn score(w: &Workload, buffer: Option<usize>, drain: Option<u64>) -> ScoredRun {
    let result = run_traced(w, buffer, drain);
    let (report, analysis_time) = analyze(w, &result);
    let accuracy = breakdown(&w.program, &result.truth, &report);
    let traces = result.traces.as_ref().expect("traced");
    let (mut lost, mut kept) = (0u64, 0u64);
    for t in &traces.per_core {
        kept += t.bytes.len() as u64;
        lost += t.losses.iter().map(|l| l.lost_bytes).sum::<u64>();
    }
    let byte_loss = if lost + kept == 0 {
        0.0
    } else {
        lost as f64 / (lost + kept) as f64
    };
    ScoredRun {
        result,
        report,
        analysis_time,
        accuracy,
        byte_loss,
    }
}

/// Measures a workload's lossless trace volume: total bytes, wall
/// cycles and core count.
pub fn trace_volume(w: &Workload) -> (u64, u64, u64) {
    let r = run_traced(w, None, None);
    let traces = r.traces.expect("traced");
    let bytes: u64 = traces.per_core.iter().map(|t| t.bytes.len() as u64).sum();
    (
        bytes,
        r.wall_cycles.max(1),
        traces.per_core.len().max(1) as u64,
    )
}

fn presets_from(bytes: u64, wall: u64, cores: u64) -> [(&'static str, usize, u64); 3] {
    let rate = (bytes * 1000) / wall / cores;
    let drain = (rate * 17 / 20).max(1); // 85% of the reference rate
    let per_core = bytes / cores;
    [
        ("256M", (per_core / 3).max(512) as usize, drain),
        ("128M", (per_core / 12).max(256) as usize, drain),
        ("64M", (per_core / 40).max(128) as usize, drain),
    ]
}

/// Derives the three buffer presets standing in for the paper's
/// 256/128/64 MB per-core buffers from a *single* reference subject (the
/// median-volume one) — real hardware gives every subject the same
/// buffer and export bandwidth, so subjects with high trace rates
/// (sunflow) lose more data than light ones (pmd), the structure the
/// paper's Tables 3 and 5 show.
pub fn global_presets(ws: &[Workload]) -> [(&'static str, usize, u64); 3] {
    let mut volumes: Vec<(u64, u64, u64)> = ws.iter().map(trace_volume).collect();
    volumes.sort_by_key(|&(b, _, _)| b);
    let (b, w, c) = volumes[volumes.len() / 2];
    presets_from(b, w, c)
}

/// Per-subject presets: the reference is the workload itself (used when a
/// single subject is swept in isolation, e.g. the recovery benchmarks).
pub fn buffer_presets(w: &Workload) -> [(&'static str, usize, u64); 3] {
    let (b, wall, c) = trace_volume(w);
    presets_from(b, wall, c)
}

/// Slowdown of `traced` relative to `base` wall cycles.
pub fn slowdown(base: u64, traced: u64) -> f64 {
    traced as f64 / base.max(1) as f64
}

/// Formats a slowdown like the paper ("1.154").
pub fn fmt_x(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a fraction as a percentage ("22.2%").
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_workloads::workload_by_name;

    #[test]
    fn baseline_and_traced_runs_complete() {
        let w = workload_by_name("sunflow", 1);
        let base = run_baseline(&w);
        assert!(base.thread_errors.is_empty());
        let traced = run_traced(&w, None, None);
        assert!(traced.thread_errors.is_empty());
        assert!(traced.traces.is_some());
        assert!(slowdown(base.wall_cycles, traced.wall_cycles) >= 1.0);
    }

    #[test]
    fn scoring_produces_high_accuracy_without_loss() {
        let w = workload_by_name("luindex", 1);
        let s = score(&w, None, None);
        assert_eq!(s.byte_loss, 0.0);
        assert!(
            s.accuracy.overall > 0.9,
            "lossless luindex should reconstruct >90%, got {:.3}",
            s.accuracy.overall
        );
    }

    #[test]
    fn presets_order_by_size() {
        let w = workload_by_name("sunflow", 1);
        let presets = buffer_presets(&w);
        assert!(presets[0].1 > presets[1].1);
        assert!(presets[1].1 > presets[2].1);
        assert!(presets[0].2 >= 1);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_x(1.1536), "1.154");
        assert_eq!(fmt_pct(0.2223), "22.2%");
    }
}
