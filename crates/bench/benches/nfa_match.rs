//! The §4 ablation: Algorithm 1 (naive enumerate-and-test) vs
//! Algorithm 2 (abstraction-guided reconstruction).
//!
//! Both project the same decoded interpreter segments onto the ICFG; the
//! paper's claim is that the abstraction prunes candidate start states
//! cheaply enough to pay for itself.

use criterion::{criterion_group, criterion_main, Criterion};
use jportal_cfg::abs::AbstractNfa;
use jportal_cfg::{Icfg, Nfa, Sym};
use jportal_core::decode_segment;
use jportal_ipt::{decode_packets, segment_stream};
use jportal_jvm::runtime::{Jvm, JvmConfig};
use jportal_workloads::workload_by_name;

/// Decoded interpreter-mode symbol runs from a real avrora run.
fn segments() -> (jportal_bytecode::Program, Vec<Vec<Sym>>) {
    let w = workload_by_name("avrora", 2);
    let r = Jvm::new(JvmConfig {
        tracing: true,
        c1_threshold: u64::MAX,
        c2_threshold: u64::MAX,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    let traces = r.traces.as_ref().unwrap();
    let packets = decode_packets(&traces.per_core[0].bytes);
    let raw = segment_stream(packets, &traces.per_core[0].losses, 0);
    let seg = decode_segment(&w.program, &r.archive, &raw[0]);
    // Cut the long decoded stream into mid-trace windows: these are the
    // "arbitrary subsequence" projections of §4.
    let syms = seg.syms();
    let mut windows = Vec::new();
    let mut at = 64;
    while at + 48 < syms.len() && windows.len() < 16 {
        windows.push(syms[at..at + 48].to_vec());
        at += 197;
    }
    (w.program, windows)
}

/// A deliberately large program (hundreds of methods) where candidate
/// start sets are big — the regime the paper's Algorithm 2 targets
/// (DaCapo ICFGs have 10⁵–10⁶ nodes; tiny analogs under-sell the
/// abstraction, so the crossover is measured here explicitly).
fn big_program_segments() -> (jportal_bytecode::Program, Vec<Vec<Sym>>) {
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I};
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("Big", None, 0);
    let mut methods = Vec::new();
    for i in 0..240u32 {
        let mut m = pb.method(c, format!("m{i}"), 1, true);
        let alt = m.label();
        let done = m.label();
        m.emit(I::Iload(0));
        m.emit(I::Iconst(i as i64 % 7 + 1));
        m.emit(I::Irem);
        m.branch_if(CmpKind::Eq, alt);
        m.emit(I::Iload(0));
        m.emit(I::Iconst(3));
        m.emit(I::Imul);
        m.emit(I::Iconst(1));
        m.emit(I::Iadd);
        m.jump(done);
        m.bind(alt);
        m.emit(I::Iload(0));
        m.emit(I::Iconst(i as i64 + 2));
        m.emit(I::Iadd);
        m.bind(done);
        m.emit(I::Ireturn);
        methods.push(m.finish());
    }
    let mut m = pb.method(c, "main", 0, false);
    m.reserve_locals(2);
    let head = m.label();
    let done = m.label();
    m.emit(I::Iconst(40));
    m.emit(I::Istore(1));
    m.bind(head);
    m.emit(I::Iload(1));
    m.branch_if(CmpKind::Le, done);
    for k in 0..6 {
        m.emit(I::Iload(1));
        m.emit(I::InvokeStatic(methods[(k * 37) % methods.len()]));
        m.emit(I::Pop);
    }
    m.emit(I::Iinc(1, -1));
    m.jump(head);
    m.bind(done);
    m.emit(I::Return);
    let main = m.finish();
    let program = pb.finish_with_entry(main).unwrap();

    let r = Jvm::new(JvmConfig {
        tracing: true,
        c1_threshold: u64::MAX,
        c2_threshold: u64::MAX,
        ..JvmConfig::default()
    })
    .run(&program);
    let traces = r.traces.as_ref().unwrap();
    let packets = decode_packets(&traces.per_core[0].bytes);
    let raw = segment_stream(packets, &traces.per_core[0].losses, 0);
    let seg = decode_segment(&program, &r.archive, &raw[0]);
    let syms = seg.syms();
    let mut windows = Vec::new();
    let mut at = 128;
    while at + 40 < syms.len() && windows.len() < 8 {
        windows.push(syms[at..at + 40].to_vec());
        at += 401;
    }
    (program, windows)
}

fn bench_nfa(c: &mut Criterion) {
    let (program, windows) = segments();
    let icfg = Icfg::build(&program);
    let nfa = Nfa::new(&program, &icfg);
    let anfa = AbstractNfa::new(&program, &icfg);

    let mut g = c.benchmark_group("nfa_match");
    g.bench_function("algorithm1_enumerate_and_test", |b| {
        b.iter(|| {
            let mut accepted = 0;
            for w in &windows {
                if nfa.enumerate_and_test(w).is_accepted() {
                    accepted += 1;
                }
            }
            accepted
        })
    });
    g.bench_function("algorithm2_abstraction_guided", |b| {
        b.iter(|| {
            let mut accepted = 0;
            for w in &windows {
                if anfa.algorithm2(w).is_accepted() {
                    accepted += 1;
                }
            }
            accepted
        })
    });
    g.bench_function("set_simulation_all_starts", |b| {
        b.iter(|| {
            let mut accepted = 0;
            for w in &windows {
                if nfa.match_anywhere(w).is_accepted() {
                    accepted += 1;
                }
            }
            accepted
        })
    });
    g.finish();

    // The large-ICFG regime.
    let (big, big_windows) = big_program_segments();
    let big_icfg = Icfg::build(&big);
    let big_nfa = Nfa::new(&big, &big_icfg);
    let big_anfa = AbstractNfa::new(&big, &big_icfg);
    let mut g = c.benchmark_group("nfa_match_large");
    g.bench_function("algorithm1_enumerate_and_test", |b| {
        b.iter(|| {
            let mut accepted = 0;
            for w in &big_windows {
                if big_nfa.enumerate_and_test(w).is_accepted() {
                    accepted += 1;
                }
            }
            accepted
        })
    });
    g.bench_function("algorithm2_abstraction_guided", |b| {
        b.iter(|| {
            let mut accepted = 0;
            for w in &big_windows {
                if big_anfa.algorithm2(w).is_accepted() {
                    accepted += 1;
                }
            }
            accepted
        })
    });
    g.finish();
}

criterion_group!(benches, bench_nfa);
criterion_main!(benches);
