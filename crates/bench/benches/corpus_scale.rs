//! Persistent-corpus scaling: recovery lookup cost must stay flat as the
//! corpus sweeps three orders of magnitude (10³ → 10⁶ segments), because
//! candidates come from the sharded anchor index — O(candidates-for-anchor),
//! never O(corpus). The sweep holds the *relevant* segment set fixed (clean
//! harvests of the lossy subjects) and grows the corpus with padding
//! segments whose anchors never match a real hole, so any latency growth is
//! pure index overhead and the fills themselves are invariants:
//! fill rate and mean confidence must be non-decreasing with corpus size
//! (they are in fact equal), and that check is deterministic, so a
//! violation kills the bench regardless of gate flags.
//!
//! The second half pins the SWAR suffix kernel against the scalar oracle
//! on a long shared-tail stream: same score (hard assert) and at least a
//! 2× speedup (gated).
//!
//! Writes `BENCH_corpus.json` and regenerates `docs/results/corpus_scale.md`
//! following the house protocol: refuse to overwrite the committed baseline
//! on a >10% regression unless `--force`/`JPORTAL_BENCH_FORCE=1`;
//! `JPORTAL_BENCH_GATE=1` fails the process when the latency ratio exceeds
//! 1.5× or the SWAR speedup drops below 2×; quick-mode runs
//! (`JPORTAL_BENCH_QUICK=1`) check the invariants but never rewrite files.

use criterion::{criterion_group, criterion_main, Criterion};
use jportal_bytecode::OpKind;
use jportal_cfg::Sym;
use jportal_core::{JPortal, JPortalConfig, JPortalReport};
use jportal_corpus::pack::{suffix_scalar, suffix_swar, PackedSyms};
use jportal_corpus::{Corpus, CorpusBuilder};
use jportal_jvm::runtime::{Jvm, JvmConfig};
use jportal_jvm::RunResult;
use jportal_workloads::{workload_by_name, Workload};
use std::sync::Arc;
use std::time::Instant;

/// Lossy subjects whose holes outrun in-run recovery, so the corpus
/// consult point actually fires (same configs as `tests/corpus_learning.rs`).
const SUBJECTS: &[&str] = &["fop", "h2"];

fn quick() -> bool {
    std::env::var("JPORTAL_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn force() -> bool {
    std::env::var("JPORTAL_BENCH_FORCE")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--force")
}

fn gate() -> bool {
    std::env::var("JPORTAL_BENCH_GATE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Pulls `"key": <number>` out of the committed JSON (no parser dep).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn clean_run(w: &Workload) -> RunResult {
    Jvm::new(JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads)
}

fn lossy_run(w: &Workload) -> RunResult {
    Jvm::new(JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        pt_buffer_capacity: 1000,
        drain_bytes_per_kilocycle: 50,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads)
}

/// Deterministic pseudo-random stream (SplitMix64) for padding segments.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn random_sym(rng: &mut Rng) -> Sym {
    let op = OpKind::ALL[(rng.next() as usize) % OpKind::ALL.len()];
    match rng.next() % 3 {
        0 => Sym::branch(op, true),
        1 => Sym::branch(op, false),
        _ => Sym::plain(op),
    }
}

/// One padding segment: minimum length (one indexed anchor window), ops
/// drawn from the whole alphabet, rerolled until every op window avoids
/// the `forbidden` anchor keys — the op triples the subjects' lossy runs
/// can ever present at a hole. Padding therefore loads the index and the
/// arenas but can never enter a real hole's candidate bucket, which is
/// what lets the sweep isolate pure index overhead.
fn padding_segment(
    rng: &mut Rng,
    anchor_len: usize,
    forbidden: &std::collections::HashSet<u64>,
) -> Vec<Sym> {
    let len = anchor_len + 1;
    loop {
        let syms: Vec<Sym> = (0..len).map(|_| random_sym(rng)).collect();
        let clean = syms
            .windows(anchor_len)
            .all(|w| !forbidden.contains(&jportal_corpus::anchor_key(w)));
        if clean {
            return syms;
        }
    }
}

/// Every anchor key a hole in these reports could look up: all op
/// windows of every reconstructed timeline (a superset of the in-run
/// segment windows the recovery engine anchors on).
fn forbidden_keys(reports: &[JPortalReport], anchor_len: usize) -> std::collections::HashSet<u64> {
    let mut keys = std::collections::HashSet::new();
    for rep in reports {
        for t in &rep.threads {
            let ops: Vec<u8> = t.entries.iter().map(|e| e.op as u8).collect();
            for w in ops.windows(anchor_len) {
                keys.insert(jportal_corpus::anchor_key_ops(w.iter().copied()));
            }
        }
    }
    keys
}

/// What one (subject, corpus size) analysis measured.
struct Cell {
    median_s: f64,
    holes: usize,
    filled: usize,
    hits: usize,
    lookups: usize,
    candidates: usize,
    confidence_sum: f64,
    fills: usize,
}

fn measure_cell(w: &Workload, r: &RunResult, corpus: &Arc<Corpus>, reps: usize) -> Cell {
    let traces = r.traces.as_ref().expect("tracing on");
    let jp = JPortal::with_config(
        &w.program,
        JPortalConfig {
            corpus: true,
            ..JPortalConfig::default()
        },
    )
    .with_corpus_store(Arc::clone(corpus));
    let mut report: Option<JPortalReport> = None;
    let mut times = Vec::with_capacity(reps);
    for _ in 0..=reps {
        let t0 = Instant::now();
        let rep = criterion::black_box(jp.analyze(traces, &r.archive));
        let dt = t0.elapsed().as_secs_f64();
        if report.is_none() {
            report = Some(rep); // first pass is the warm-up, keep its report
        } else {
            times.push(dt);
        }
    }
    times.sort_by(f64::total_cmp);
    let report = report.unwrap();
    let fills: Vec<f64> = report
        .quality
        .threads
        .iter()
        .flat_map(|t| t.fills.iter().map(|f| f.confidence))
        .collect();
    Cell {
        median_s: times[times.len() / 2],
        holes: report.threads.iter().map(|t| t.recovery.holes).sum(),
        filled: report
            .threads
            .iter()
            .map(|t| t.recovery.filled_from_cs + t.recovery.filled_by_walk)
            .sum(),
        hits: report.threads.iter().map(|t| t.recovery.corpus_hits).sum(),
        lookups: report
            .threads
            .iter()
            .map(|t| t.recovery.corpus_lookups)
            .sum(),
        candidates: report
            .threads
            .iter()
            .map(|t| t.recovery.corpus_candidates)
            .sum(),
        confidence_sum: fills.iter().sum(),
        fills: fills.len(),
    }
}

/// One corpus size in the sweep, aggregated over all subjects.
struct SizePoint {
    segments: usize,
    arena_bytes: usize,
    analyze_total_s: f64,
    fill_rate: f64,
    mean_confidence: f64,
    hits: usize,
}

struct Numbers {
    points: Vec<SizePoint>,
    latency_ratio: f64,
    swar_ns: f64,
    scalar_ns: f64,
}

impl Numbers {
    fn swar_speedup(&self) -> f64 {
        self.scalar_ns / self.swar_ns.max(1.0)
    }
}

fn write_report(n: &Numbers) {
    let path = repo_root().join("BENCH_corpus.json");
    let committed = std::fs::read_to_string(&path).ok();
    let ratio = n.latency_ratio;
    let speedup = n.swar_speedup();

    if gate() {
        if ratio > 1.5 {
            eprintln!("FAILED: corpus sweep latency ratio {ratio:.2} exceeds the 1.5x gate");
            std::process::exit(1);
        }
        if speedup < 2.0 {
            eprintln!("FAILED: SWAR speedup {speedup:.2}x below the 2x gate");
            std::process::exit(1);
        }
    }
    if let Some(j) = committed.as_deref() {
        let base_ratio = json_number(j, "latency_ratio_max_over_min").unwrap_or(f64::MAX);
        let base_speedup = json_number(j, "swar_speedup").unwrap_or(0.0);
        println!(
            "corpus_scale gate: latency ratio {ratio:.2} (committed {base_ratio:.2}), \
             SWAR speedup {speedup:.2}x (committed {base_speedup:.2}x)"
        );
        let regressed = ratio > base_ratio * 1.10 || speedup < base_speedup * 0.90;
        if regressed && !force() {
            println!(
                "BENCH_corpus.json NOT overwritten (regression; rerun with --force or \
                 JPORTAL_BENCH_FORCE=1)"
            );
            return;
        }
        // Quick-mode timings are too noisy to become the committed
        // baseline: check against it, never rewrite it.
        if quick() && !force() {
            return;
        }
    }

    let per_size: Vec<String> =
        n.points
            .iter()
            .map(|p| {
                format!(
                "    {{\"segments\": {}, \"arena_bytes\": {}, \"analyze_total_seconds\": {:.6}, \
                 \"fill_rate\": {:.4}, \"mean_confidence\": {:.4}, \"corpus_hits\": {}}}",
                p.segments, p.arena_bytes, p.analyze_total_s, p.fill_rate, p.mean_confidence, p.hits
            )
            })
            .collect();
    let json = format!(
        "{{\n  \"latency_ratio_max_over_min\": {ratio:.3},\n  \
         \"swar_suffix_ns\": {:.1},\n  \"scalar_suffix_ns\": {:.1},\n  \
         \"swar_speedup\": {speedup:.3},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        n.swar_ns,
        n.scalar_ns,
        per_size.join(",\n"),
    );
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("BENCH_corpus.json not written: {e}");
    } else {
        println!("BENCH_corpus.json: latency ratio {ratio:.2}, SWAR speedup {speedup:.2}x");
    }
}

fn write_markdown(n: &Numbers) {
    let path = repo_root().join("docs/results/corpus_scale.md");
    if quick() && path.exists() {
        return;
    }
    let mut md = String::from(
        "# Corpus scaling sweep\n\n\
         Generated by `cargo bench -p jportal-bench --bench corpus_scale`.\n\n\
         The relevant segment set (clean harvests of lossy fop/h2) is held\n\
         fixed while padding segments — anchors verified to collide with\n\
         nothing real — grow the corpus three orders of magnitude. Lookup\n\
         goes through the 16-way sharded anchor index, so analysis latency\n\
         must stay flat and the fills must not change at all.\n\n\
         | corpus segments | arena bytes | analyze (both subjects) | fill rate | mean confidence | corpus hits |\n\
         |---|---|---|---|---|---|\n",
    );
    for p in &n.points {
        md.push_str(&format!(
            "| {} | {} | {:.2} ms | {:.1}% | {:.3} | {} |\n",
            p.segments,
            p.arena_bytes,
            p.analyze_total_s * 1e3,
            100.0 * p.fill_rate,
            p.mean_confidence,
            p.hits
        ));
    }
    md.push_str(&format!(
        "\nLatency ratio (max/min across sizes): **{:.2}×** (gate: 1.5×).\n\n\
         ## SWAR suffix kernel\n\n\
         | kernel | time per call | speedup |\n|---|---|---|\n\
         | scalar backward scan | {:.0} ns | 1.0× |\n\
         | SWAR (8 ops/word, XOR + clz) | {:.0} ns | **{:.2}×** |\n\n\
         Scores are asserted identical before timing (and pinned by the\n\
         `swar_equivalence` proptest suite).\n",
        n.latency_ratio,
        n.scalar_ns,
        n.swar_ns,
        n.swar_speedup(),
    ));
    if let Err(e) = std::fs::write(&path, &md) {
        eprintln!("docs/results/corpus_scale.md not written: {e}");
    } else {
        println!("docs/results/corpus_scale.md regenerated");
    }
}

fn bench_corpus_scale(c: &mut Criterion) {
    // Relevant segments: clean harvests of every subject, shared by all
    // sweep sizes so the fills are comparable across the sweep.
    let anchor_len = JPortalConfig::default().recovery.anchor_len;
    let mut builder = CorpusBuilder::new(anchor_len);
    let subjects: Vec<(Workload, RunResult)> = SUBJECTS
        .iter()
        .map(|&name| {
            let w = workload_by_name(name, 2);
            let clean = clean_run(&w);
            JPortal::with_config(&w.program, JPortalConfig::default()).analyze_harvest(
                clean.traces.as_ref().expect("tracing on"),
                &clean.archive,
                &mut builder,
            );
            let lossy = lossy_run(&w);
            (w, lossy)
        })
        .collect();
    let relevant = builder.build();
    assert!(relevant.segment_count() > 0, "harvest produced no segments");

    // Anchor keys the lossy runs can present (from corpus-less analyses,
    // so the set is independent of the sweep itself).
    let baselines: Vec<JPortalReport> = subjects
        .iter()
        .map(|(w, r)| {
            JPortal::with_config(&w.program, JPortalConfig::default())
                .analyze(r.traces.as_ref().expect("tracing on"), &r.archive)
        })
        .collect();
    let forbidden = forbidden_keys(&baselines, anchor_len);

    let sizes: &[usize] = if quick() {
        &[1_000, 10_000, 100_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let reps = if quick() { 3 } else { 9 };

    let mut rng = Rng(0x1CEB00DA);
    let mut points = Vec::new();
    for &target in sizes {
        while builder.segment_count() < target {
            let syms = padding_segment(&mut rng, anchor_len, &forbidden);
            let locs = vec![jportal_corpus::pack_loc(None, None); syms.len()];
            builder.insert(&syms, &locs, &[]);
        }
        let corpus = Arc::new(builder.build());
        let cells: Vec<Cell> = subjects
            .iter()
            .map(|(w, r)| measure_cell(w, r, &corpus, reps))
            .collect();
        let holes: usize = cells.iter().map(|c| c.holes).sum();
        let filled: usize = cells.iter().map(|c| c.filled).sum();
        let fills: usize = cells.iter().map(|c| c.fills).sum();
        let conf: f64 = cells.iter().map(|c| c.confidence_sum).sum();
        points.push(SizePoint {
            segments: corpus.segment_count(),
            arena_bytes: corpus.stats().arena_bytes,
            analyze_total_s: cells.iter().map(|c| c.median_s).sum(),
            fill_rate: if holes == 0 {
                1.0
            } else {
                filled as f64 / holes as f64
            },
            mean_confidence: if fills == 0 { 0.0 } else { conf / fills as f64 },
            hits: cells.iter().map(|c| c.hits).sum(),
        });
        println!(
            "corpus_scale: {} segments → {:.2} ms, fill rate {:.3}, {} hits \
             ({} lookups, {} candidates)",
            points.last().unwrap().segments,
            points.last().unwrap().analyze_total_s * 1e3,
            points.last().unwrap().fill_rate,
            points.last().unwrap().hits,
            cells.iter().map(|c| c.lookups).sum::<usize>(),
            cells.iter().map(|c| c.candidates).sum::<usize>(),
        );
    }

    // Deterministic invariants — violations are correctness bugs, so they
    // kill the bench unconditionally (no gate flag needed).
    if points.iter().all(|p| p.hits == 0) {
        eprintln!("FAILED: corpus consult point never fired; the sweep measured nothing");
        std::process::exit(1);
    }
    for pair in points.windows(2) {
        if pair[1].fill_rate < pair[0].fill_rate - 1e-12 {
            eprintln!(
                "FAILED: fill rate dropped {} → {} as the corpus grew {} → {} segments",
                pair[0].fill_rate, pair[1].fill_rate, pair[0].segments, pair[1].segments
            );
            std::process::exit(1);
        }
        if pair[1].mean_confidence < pair[0].mean_confidence - 1e-12 {
            eprintln!(
                "FAILED: mean confidence dropped {} → {} as the corpus grew {} → {} segments",
                pair[0].mean_confidence,
                pair[1].mean_confidence,
                pair[0].segments,
                pair[1].segments
            );
            std::process::exit(1);
        }
    }

    let medians: Vec<f64> = points.iter().map(|p| p.analyze_total_s).collect();
    let latency_ratio = medians.iter().cloned().fold(0.0, f64::max)
        / medians.iter().cloned().fold(f64::MAX, f64::min).max(1e-12);

    // SWAR vs scalar on a long shared tail: the regime the in-run
    // tier_suffix hits on every candidate, far past the 8-sym word size.
    let mut rng = Rng(0xDECAF);
    let tail: Vec<Sym> = (0..12_000).map(|_| random_sym(&mut rng)).collect();
    let mut a: Vec<Sym> = (0..500).map(|_| random_sym(&mut rng)).collect();
    let mut b: Vec<Sym> = (0..900).map(|_| random_sym(&mut rng)).collect();
    a.extend_from_slice(&tail);
    b.extend_from_slice(&tail);
    let pa = PackedSyms::from_syms(&a);
    let pb = PackedSyms::from_syms(&b);
    let swar = suffix_swar(
        &pa.ops,
        &pa.dirs,
        a.len(),
        &pb.ops,
        &pb.dirs,
        b.len(),
        usize::MAX,
    );
    let scalar = suffix_scalar(
        &pa.ops,
        &pa.dirs,
        a.len(),
        &pb.ops,
        &pb.dirs,
        b.len(),
        usize::MAX,
    );
    assert_eq!(swar, scalar, "SWAR and scalar kernels disagree");
    assert!(swar >= tail.len(), "shared tail not found");

    let mut g = c.benchmark_group("corpus_scale");
    g.bench_function("suffix_swar", |bch| {
        bch.iter(|| {
            suffix_swar(
                &pa.ops,
                &pa.dirs,
                a.len(),
                &pb.ops,
                &pb.dirs,
                b.len(),
                usize::MAX,
            )
        })
    });
    g.bench_function("suffix_scalar", |bch| {
        bch.iter(|| {
            suffix_scalar(
                &pa.ops,
                &pa.dirs,
                a.len(),
                &pb.ops,
                &pb.dirs,
                b.len(),
                usize::MAX,
            )
        })
    });
    g.finish();

    let find = |name: &str| {
        c.results
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} not measured"))
            .clone()
    };
    let numbers = Numbers {
        points,
        latency_ratio,
        swar_ns: find("suffix_swar").min_ns,
        scalar_ns: find("suffix_scalar").min_ns,
    };
    write_report(&numbers);
    write_markdown(&numbers);
}

criterion_group!(benches, bench_corpus_scale);
criterion_main!(benches);
