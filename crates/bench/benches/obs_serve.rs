//! Live-telemetry cost: end-to-end analysis with the telemetry plane
//! (and a scraping client!) on vs fully off, plus the scrape-side
//! latency distribution of the loopback endpoint.
//!
//! Writes `BENCH_obs.json` at the repo root with both signals:
//!
//! * `telemetry_overhead_delta` — analysis wall time with an attached
//!   plane + live scraper over the plain pipeline, as the ratio of each
//!   side's fastest rep (interference-robust; medians are reported too).
//!   Budget: <5% on full runs.
//! * `scrape_p99_us` — client-observed p99 latency of `/metrics.json`
//!   over loopback while analyses run. Budget: 25 ms.
//!
//! Like the other bench gates, `JPORTAL_BENCH_GATE=1` turns a breach
//! into a hard failure for CI, and the overhead check requires BOTH
//! signals before it trips: the absolute budget, and a >5-point
//! regression of the committed `telemetry_overhead_delta`. A real
//! overhead regression moves both; scheduler noise on a shared vCPU
//! (this container's wall clock drifts ±30% between invocations) moves
//! only the absolute one. Ungated runs report the breach and refuse to
//! overwrite the baseline instead of failing. As elsewhere, a run that
//! regresses the committed baseline median by >10% refuses to overwrite
//! the file unless forced (`--force` / `JPORTAL_BENCH_FORCE=1`), and
//! quick-mode runs (`JPORTAL_BENCH_QUICK=1`) report against the
//! committed file but never rewrite it.

use criterion::{criterion_group, criterion_main, Criterion};
use jportal_core::{JPortal, JPortalConfig};
use jportal_jvm::runtime::{Jvm, JvmConfig};
use jportal_obs::{
    http_get, prometheus_text, Obs, TelemetryConfig, TelemetryPlane, TelemetryServer,
};
use jportal_workloads::workload_by_name;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Budget on the telemetry-on analysis overhead. Quick mode (7 reps on
/// shared CI vCPUs) is too noisy for the real line, so it gets a
/// relaxed smoke budget; the 5% claim is enforced by full runs and by
/// the committed `BENCH_obs.json`.
fn overhead_budget() -> f64 {
    if quick() {
        0.10
    } else {
        0.05
    }
}
/// Budget on the client-observed p99 scrape latency (µs).
const SCRAPE_P99_BUDGET_US: f64 = 25_000.0;

fn gate() -> bool {
    std::env::var("JPORTAL_BENCH_GATE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn quick() -> bool {
    std::env::var("JPORTAL_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn force() -> bool {
    std::env::var("JPORTAL_BENCH_FORCE")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--force")
}

/// Pulls `"key": <number>` out of the committed JSON (no parser dep).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct ObsNumbers {
    off_median: f64,
    on_median: f64,
    delta: f64,
    scrapes: usize,
    scrape_p50_us: f64,
    scrape_p99_us: f64,
}

/// Paired overhead measurement: the "on" side analyzes with a live
/// plane, a bound listener and a client scraping `/metrics.json` at
/// ~40 Hz — already orders of magnitude hotter than a production
/// scraper, but with several samples per measurement phase.
fn measure(reps: usize) -> ObsNumbers {
    // Large enough that per-analysis fixed costs (three stage ticks,
    // ~25 µs each) amortize into the noise — the budget is about the
    // production regime, not sub-millisecond toy runs.
    let w = workload_by_name("luindex", 48);
    let r = Jvm::new(JvmConfig {
        tracing: true,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    let traces = r.traces.as_ref().unwrap();

    let jp_off = JPortal::new(&w.program);
    let jp_on = JPortal::with_config(
        &w.program,
        JPortalConfig {
            telemetry: Some(TelemetryConfig::default()),
            ..JPortalConfig::default()
        },
    );
    let plane = Arc::clone(jp_on.telemetry_plane().expect("telemetry on"));
    let server = TelemetryServer::bind(plane, "127.0.0.1:0").expect("loopback bind");
    let url = format!("{}/metrics.json", server.url());

    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut lat_us = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let t0 = Instant::now();
                let ok = http_get(&url).map(|r| r.status == 200).unwrap_or(false);
                if ok {
                    lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            lat_us
        })
    };

    let time = |jp: &JPortal| -> f64 {
        let t0 = Instant::now();
        criterion::black_box(jp.analyze(traces, &r.archive));
        t0.elapsed().as_secs_f64()
    };
    time(&jp_off); // warm-up
    time(&jp_on);
    // Order-alternated samples, gated on the ratio of per-side minima:
    // the plane's cost is systematic while scheduler interference (the
    // scraper thread included) is strictly additive, so the fastest rep
    // on each side isolates the real delta — medians of a dozen reps on
    // a shared vCPU swing ±5% run to run, minima hold steady.
    let mut off = Vec::with_capacity(reps);
    let mut on = Vec::with_capacity(reps);
    for i in 0..reps {
        let (a, b) = if i % 2 == 0 {
            let a = time(&jp_off);
            (a, time(&jp_on))
        } else {
            let b = time(&jp_on);
            (time(&jp_off), b)
        };
        off.push(a);
        on.push(b);
    }
    stop.store(true, Ordering::Relaxed);
    let mut lat_us = scraper.join().expect("scraper thread");
    server.shutdown();

    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let off_min = off.iter().copied().fold(f64::INFINITY, f64::min);
    let on_min = on.iter().copied().fold(f64::INFINITY, f64::min);
    let off_median = median(&mut off);
    let on_median = median(&mut on);
    let delta = on_min / off_min - 1.0;
    lat_us.sort_by(f64::total_cmp);
    let pct = |q: f64| -> f64 {
        if lat_us.is_empty() {
            return 0.0;
        }
        lat_us[((q * lat_us.len() as f64) as usize).min(lat_us.len() - 1)]
    };
    ObsNumbers {
        off_median,
        on_median,
        delta,
        scrapes: lat_us.len(),
        scrape_p50_us: pct(0.50),
        scrape_p99_us: pct(0.99),
    }
}

fn write_obs_report(n: &ObsNumbers, reps: usize) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_obs.json");
    let committed = std::fs::read_to_string(&path).ok();
    let committed_delta = committed
        .as_deref()
        .and_then(|j| json_number(j, "telemetry_overhead_delta"));
    let committed_off = committed
        .as_deref()
        .and_then(|j| json_number(j, "e2e_off_median_seconds"));
    println!(
        "obs_serve gate: overhead {:+.1}% (budget {:.0}%, committed {:+.1}%), \
         scrape p99 {:.0} µs over {} scrapes (budget {:.0} µs)",
        n.delta * 100.0,
        overhead_budget() * 100.0,
        committed_delta.unwrap_or(0.0) * 100.0,
        n.scrape_p99_us,
        n.scrapes,
        SCRAPE_P99_BUDGET_US
    );

    // Dual-signal overhead check: a breach needs the absolute budget
    // AND a >5-point regression of the committed delta (absent a
    // committed file the budget alone decides). The p99 budget is 6x
    // the loaded-loopback p99, so it stays a single signal.
    let mut breached = false;
    if n.delta > overhead_budget() && committed_delta.map(|c| n.delta > c + 0.05).unwrap_or(true) {
        eprintln!(
            "FAILED: telemetry-on overhead {:+.1}% exceeds the {:.0}% budget and regresses \
             the committed {:+.1}% by >5 points",
            n.delta * 100.0,
            overhead_budget() * 100.0,
            committed_delta.unwrap_or(0.0) * 100.0
        );
        breached = true;
    }
    if n.scrapes >= 2 && n.scrape_p99_us > SCRAPE_P99_BUDGET_US {
        eprintln!(
            "FAILED: p99 scrape latency {:.0} µs exceeds the {:.0} µs budget",
            n.scrape_p99_us, SCRAPE_P99_BUDGET_US
        );
        breached = true;
    }
    if n.scrapes < 2 {
        eprintln!("FAILED: only {} scrapes landed during the run", n.scrapes);
        breached = true;
    }
    if breached {
        if gate() {
            std::process::exit(1);
        }
        if !force() {
            println!("BENCH_obs.json NOT overwritten: budget breached (see FAILED lines above)");
            return;
        }
    }

    if let Some(committed) = committed_off {
        if n.off_median > committed * 1.10 && !force() {
            println!(
                "BENCH_obs.json NOT overwritten: baseline median {:.3} ms regresses the \
                 committed {:.3} ms by >10% (rerun with --force or JPORTAL_BENCH_FORCE=1)",
                n.off_median * 1e3,
                committed * 1e3
            );
            return;
        }
        // Quick-mode runs are too noisy to become the baseline.
        if quick() && !force() {
            println!(
                "BENCH_obs.json kept (quick mode): overhead {:+.1}%, p99 scrape {:.0} µs \
                 (committed baseline {:.3} ms)",
                n.delta * 100.0,
                n.scrape_p99_us,
                committed * 1e3
            );
            return;
        }
    }

    let json = format!(
        "{{\n  \"workload\": \"luindex@48\",\n  \"iterations\": {reps},\n  \
         \"e2e_off_median_seconds\": {:.6},\n  \
         \"e2e_telemetry_median_seconds\": {:.6},\n  \
         \"telemetry_overhead_delta\": {:.4},\n  \
         \"scrape_count\": {},\n  \
         \"scrape_p50_us\": {:.0},\n  \
         \"scrape_p99_us\": {:.0}\n}}\n",
        n.off_median, n.on_median, n.delta, n.scrapes, n.scrape_p50_us, n.scrape_p99_us
    );
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("BENCH_obs.json not written: {e}");
    } else {
        println!(
            "BENCH_obs.json: off {:.3} ms, telemetry+scraper {:.3} ms ({:+.1}%), \
             {} scrapes, p50/p99 {:.0}/{:.0} µs",
            n.off_median * 1e3,
            n.on_median * 1e3,
            n.delta * 100.0,
            n.scrapes,
            n.scrape_p50_us,
            n.scrape_p99_us
        );
    }
}

/// Micro-costs of the plane itself: one stage tick (snapshot + series
/// append + publish) and one full Prometheus render.
fn bench_plane(c: &mut Criterion) {
    let obs = Obs::new(true);
    // A registry the size of a real run's.
    for i in 0..24 {
        obs.registry().counter(&format!("bench.counter{i}")).add(i);
        obs.registry().gauge(&format!("bench.gauge{i}")).set(i);
    }
    let s = obs.registry().sketch("bench.lat_us");
    for v in 0..4096u64 {
        s.record(v * 7 % 50_000);
    }
    let plane = TelemetryPlane::new(
        obs.clone(),
        TelemetryConfig {
            deterministic: true,
            ..TelemetryConfig::default()
        },
    );

    let mut g = c.benchmark_group("obs_serve");
    g.bench_function("plane_tick_stage", |b| b.iter(|| plane.tick_stage()));
    g.bench_function("sketch_record", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(7919);
            s.record(i % 1_000_000);
        })
    });
    g.bench_function("prometheus_text", |b| {
        let snap = plane.latest();
        b.iter(|| criterion::black_box(prometheus_text(&snap.metrics)))
    });
    g.finish();

    let reps = if quick() { 7 } else { 31 };
    let numbers = measure(reps);
    write_obs_report(&numbers, reps);
}

criterion_group!(benches, bench_plane);
criterion_main!(benches);
