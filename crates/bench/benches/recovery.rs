//! The §5 ablation: Algorithm 3 (naive per-instruction CS search) vs
//! Algorithm 4 (three-tier abstraction-guided search with pruning).

use criterion::{criterion_group, criterion_main, Criterion};
use jportal_cfg::Icfg;
use jportal_core::decode_segment;
use jportal_core::{Recovery, RecoveryConfig, RecoveryStats, SegmentView};
use jportal_ipt::{decode_packets, segment_stream};
use jportal_jvm::runtime::{Jvm, JvmConfig};
use jportal_workloads::workload_by_name;

/// A lossy sunflow run: real segments with real holes.
fn lossy_segments() -> (jportal_bytecode::Program, Vec<SegmentView>) {
    let w = workload_by_name("sunflow", 4);
    let r = Jvm::new(JvmConfig {
        tracing: true,
        pt_buffer_capacity: 1024,
        drain_bytes_per_kilocycle: 20,
        c1_threshold: u64::MAX,
        c2_threshold: u64::MAX,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    let traces = r.traces.as_ref().unwrap();
    let packets = decode_packets(&traces.per_core[0].bytes);
    let raw = segment_stream(packets, &traces.per_core[0].losses, 0);
    let views: Vec<SegmentView> = raw
        .iter()
        .map(|rs| {
            let d = decode_segment(&w.program, &r.archive, rs);
            SegmentView {
                nodes: vec![None; d.events.len()],
                breaks: Vec::new(),
                events: d.events,
                loss_before: d.loss_before,
            }
        })
        .filter(|v| !v.events.is_empty())
        .collect();
    (w.program, views)
}

fn bench_recovery(c: &mut Criterion) {
    let (program, views) = lossy_segments();
    let icfg = Icfg::build(&program);
    let cfg = RecoveryConfig::default();
    let naive_cfg = RecoveryConfig {
        use_abstraction: false,
        ..cfg
    };
    let is_segs: Vec<usize> = (0..views.len().saturating_sub(1))
        .filter(|&i| views[i].events.len() > cfg.anchor_len)
        .take(12)
        .collect();

    let mut g = c.benchmark_group("recovery");
    g.bench_function("algorithm3_naive_search", |b| {
        let rec = Recovery::new(&program, &icfg, &views, naive_cfg);
        b.iter(|| {
            let mut stats = RecoveryStats::default();
            let mut found = 0;
            for &i in &is_segs {
                found += rec.search_naive(i, &mut stats).len();
            }
            found
        })
    });
    g.bench_function("algorithm4_abstraction_guided", |b| {
        let rec = Recovery::new(&program, &icfg, &views, cfg);
        b.iter(|| {
            let mut stats = RecoveryStats::default();
            let mut found = 0;
            for &i in &is_segs {
                found += rec.search_abstraction(i, &mut stats).len();
            }
            found
        })
    });
    g.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
