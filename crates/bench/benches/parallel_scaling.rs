//! Scaling of the parallel offline pipeline: the same lossy multi-thread
//! workload analyzed with `parallelism` fixed at 1, 2, 4 and 8 workers.
//!
//! Worker counts above `available_parallelism()` are still measured — on a
//! small machine they show the (small) overhead of oversubscription, on a
//! large one the scaling curve. The 1-worker point is the exact legacy
//! sequential path (no threads spawned), so `speedup(n) = t(1) / t(n)`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jportal_core::{JPortal, JPortalConfig};
use jportal_jvm::runtime::{Jvm, JvmConfig};
use jportal_workloads::workload_by_name;

fn bench_parallel_scaling(c: &mut Criterion) {
    let w = workload_by_name("luindex", 3);
    let r = Jvm::new(JvmConfig {
        tracing: true,
        pt_buffer_capacity: 4096,
        drain_bytes_per_kilocycle: 30,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    let traces = r.traces.as_ref().unwrap();
    let bytes: u64 = traces.per_core.iter().map(|t| t.bytes.len() as u64).sum();

    let mut g = c.benchmark_group("parallel_scaling");
    g.throughput(Throughput::Bytes(bytes));
    for workers in [1usize, 2, 4, 8] {
        let name = format!("analyze_workers_{workers}");
        g.bench_function(&name, |b| {
            let jportal = JPortal::with_config(
                &w.program,
                JPortalConfig {
                    parallelism: Some(workers),
                    ..JPortalConfig::default()
                },
            );
            b.iter(|| jportal.analyze(traces, &r.archive))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
