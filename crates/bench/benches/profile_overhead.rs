//! Self-profiling cost: end-to-end analysis with the 997 Hz span-stack
//! sampler on vs fully off, plus micro-costs of the seqlock hot path.
//!
//! Writes `BENCH_profile.json` at the repo root:
//!
//! * `profile_overhead_delta` — analysis wall time with the wall-clock
//!   sampler running over the plain pipeline, as the ratio of each
//!   side's fastest rep (interference-robust; medians are reported
//!   too). Budget: <2% on full runs — the profiler's whole point is to
//!   be left on.
//!
//! Like the other bench gates, `JPORTAL_BENCH_GATE=1` turns a breach
//! into a hard failure for CI, and the overhead check requires BOTH
//! signals before it trips: the absolute budget, and a >5-point
//! regression of the committed `profile_overhead_delta`. A real
//! overhead regression moves both; scheduler noise on a shared vCPU
//! moves only the absolute one. Ungated runs report the breach and
//! refuse to overwrite the baseline instead of failing. As elsewhere, a
//! run that regresses the committed baseline median by >10% refuses to
//! overwrite the file unless forced (`--force` / `JPORTAL_BENCH_FORCE=1`),
//! and quick-mode runs (`JPORTAL_BENCH_QUICK=1`) report against the
//! committed file but never rewrite it.
//!
//! Report equality with the profiler on is asserted unconditionally —
//! that is a correctness contract, not a perf budget.

use criterion::{criterion_group, criterion_main, Criterion};
use jportal_core::{JPortal, JPortalConfig};
use jportal_jvm::runtime::{Jvm, JvmConfig};
use jportal_obs::{Obs, ProfileConfig, Profiler};
use jportal_workloads::workload_by_name;
use std::time::Instant;

/// Budget on the sampler-on analysis overhead. Quick mode (7 reps on
/// shared CI vCPUs) is too noisy for the real line, so it gets a
/// relaxed smoke budget; the 2% claim is enforced by full runs and by
/// the committed `BENCH_profile.json`.
fn overhead_budget() -> f64 {
    if quick() {
        0.10
    } else {
        0.02
    }
}

fn gate() -> bool {
    std::env::var("JPORTAL_BENCH_GATE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn quick() -> bool {
    std::env::var("JPORTAL_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn force() -> bool {
    std::env::var("JPORTAL_BENCH_FORCE")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--force")
}

/// Pulls `"key": <number>` out of the committed JSON (no parser dep).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct ProfileNumbers {
    off_median: f64,
    on_median: f64,
    delta: f64,
    samples: u64,
    stacks: usize,
}

/// Paired overhead measurement: the "on" side analyzes with the
/// wall-clock sampler sweeping every worker's span stack at 997 Hz —
/// the production posture the ≤2% claim is about.
fn measure(reps: usize) -> ProfileNumbers {
    // Large enough that per-analysis fixed costs amortize into the
    // noise — the budget is about the production regime, not
    // sub-millisecond toy runs.
    let w = workload_by_name("luindex", 48);
    let r = Jvm::new(JvmConfig {
        tracing: true,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    let traces = r.traces.as_ref().unwrap();

    let jp_off = JPortal::new(&w.program);
    let jp_on = JPortal::with_config(
        &w.program,
        JPortalConfig {
            profiling: Some(ProfileConfig::default()),
            ..JPortalConfig::default()
        },
    );

    // Correctness first: the sampler must not perturb the report.
    let report_off = jp_off.analyze(traces, &r.archive);
    let report_on = jp_on.analyze(traces, &r.archive);
    if report_off != report_on {
        eprintln!("FAILED: report differs with the profiler on");
        std::process::exit(1);
    }

    let time = |jp: &JPortal| -> f64 {
        let t0 = Instant::now();
        criterion::black_box(jp.analyze(traces, &r.archive));
        t0.elapsed().as_secs_f64()
    };
    // Order-alternated samples, gated on the ratio of per-side minima:
    // the sampler's cost is systematic while scheduler interference is
    // strictly additive, so the fastest rep on each side isolates the
    // real delta — medians of a dozen reps on a shared vCPU swing ±5%
    // run to run, minima hold steady.
    let mut off = Vec::with_capacity(reps);
    let mut on = Vec::with_capacity(reps);
    for i in 0..reps {
        let (a, b) = if i % 2 == 0 {
            let a = time(&jp_off);
            (a, time(&jp_on))
        } else {
            let b = time(&jp_on);
            (time(&jp_off), b)
        };
        off.push(a);
        on.push(b);
    }

    let snap = jp_on.profiler().expect("profiling on").snapshot();
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let off_min = off.iter().copied().fold(f64::INFINITY, f64::min);
    let on_min = on.iter().copied().fold(f64::INFINITY, f64::min);
    let off_median = median(&mut off);
    let on_median = median(&mut on);
    ProfileNumbers {
        off_median,
        on_median,
        delta: on_min / off_min - 1.0,
        samples: snap.samples,
        stacks: snap.stacks.len(),
    }
}

fn write_profile_report(n: &ProfileNumbers, reps: usize) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_profile.json");
    let committed = std::fs::read_to_string(&path).ok();
    let committed_delta = committed
        .as_deref()
        .and_then(|j| json_number(j, "profile_overhead_delta"));
    let committed_off = committed
        .as_deref()
        .and_then(|j| json_number(j, "e2e_off_median_seconds"));
    println!(
        "profile_overhead gate: overhead {:+.1}% (budget {:.0}%, committed {:+.1}%), \
         {} samples over {} stacks",
        n.delta * 100.0,
        overhead_budget() * 100.0,
        committed_delta.unwrap_or(0.0) * 100.0,
        n.samples,
        n.stacks
    );

    // Dual-signal overhead check: a breach needs the absolute budget
    // AND a >5-point regression of the committed delta (absent a
    // committed file the budget alone decides).
    let mut breached = false;
    if n.delta > overhead_budget() && committed_delta.map(|c| n.delta > c + 0.05).unwrap_or(true) {
        eprintln!(
            "FAILED: sampler-on overhead {:+.1}% exceeds the {:.0}% budget and regresses \
             the committed {:+.1}% by >5 points",
            n.delta * 100.0,
            overhead_budget() * 100.0,
            committed_delta.unwrap_or(0.0) * 100.0
        );
        breached = true;
    }
    if n.samples == 0 {
        eprintln!("FAILED: the sampler collected no samples during the measured reps");
        breached = true;
    }
    if breached {
        if gate() {
            std::process::exit(1);
        }
        if !force() {
            println!(
                "BENCH_profile.json NOT overwritten: budget breached (see FAILED lines above)"
            );
            return;
        }
    }

    if let Some(committed) = committed_off {
        if n.off_median > committed * 1.10 && !force() {
            println!(
                "BENCH_profile.json NOT overwritten: baseline median {:.3} ms regresses the \
                 committed {:.3} ms by >10% (rerun with --force or JPORTAL_BENCH_FORCE=1)",
                n.off_median * 1e3,
                committed * 1e3
            );
            return;
        }
        // Quick-mode runs are too noisy to become the baseline.
        if quick() && !force() {
            println!(
                "BENCH_profile.json kept (quick mode): overhead {:+.1}%, {} samples \
                 (committed baseline {:.3} ms)",
                n.delta * 100.0,
                n.samples,
                committed * 1e3
            );
            return;
        }
    }

    let json = format!(
        "{{\n  \"workload\": \"luindex@48\",\n  \"iterations\": {reps},\n  \
         \"sampler_hz\": 997,\n  \
         \"e2e_off_median_seconds\": {:.6},\n  \
         \"e2e_profiled_median_seconds\": {:.6},\n  \
         \"profile_overhead_delta\": {:.4},\n  \
         \"samples\": {},\n  \
         \"stacks\": {}\n}}\n",
        n.off_median, n.on_median, n.delta, n.samples, n.stacks
    );
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("BENCH_profile.json not written: {e}");
    } else {
        println!(
            "BENCH_profile.json: off {:.3} ms, profiled {:.3} ms ({:+.1}%), \
             {} samples over {} stacks",
            n.off_median * 1e3,
            n.on_median * 1e3,
            n.delta * 100.0,
            n.samples,
            n.stacks
        );
    }
}

/// Micro-costs of the sampling machinery: one profiled span open+close
/// (two seqlock writes plus the interning fast path) against the
/// profiler-off branch, and one registry-wide sample sweep.
fn bench_profile(c: &mut Criterion) {
    let mut g = c.benchmark_group("profile");
    let obs = Obs::new(true);
    g.bench_function("span_open_unprofiled", |b| {
        b.iter(|| {
            let _s = obs.span("bench", "span");
        })
    });
    {
        // Deterministic mode: the enable-count is live (span opens take
        // the seqlock write path) but no sampler thread competes with
        // the benchmark for cycles.
        let profiler = Profiler::start(ProfileConfig {
            deterministic: true,
            ..ProfileConfig::default()
        });
        g.bench_function("span_open_profiled", |b| {
            b.iter(|| {
                let _s = obs.span("bench", "span");
            })
        });
        g.bench_function("sample_now", |b| {
            let _s = obs.span("bench", "outer");
            b.iter(|| profiler.sample_now())
        });
        profiler.stop();
    }
    g.finish();

    let reps = if quick() { 7 } else { 31 };
    let numbers = measure(reps);
    write_profile_report(&numbers, reps);
}

criterion_group!(benches, bench_profile);
criterion_main!(benches);
