//! Interprocedural-summary ablation: what `JPortalConfig::summaries`
//! costs and buys on lossy reconstructions.
//!
//! Measures the fixpoint summary build, and the full pipeline with the
//! prefilters on vs off, over three recovery-heavy lossy workloads. The
//! bench also performs the **same-run equivalence check** — reconstructed
//! entries and holes must be identical in both modes (that is the
//! prefilter's contract, see `Recovery::with_summaries`) — and fails the
//! process on any divergence regardless of gate flags, because that
//! signal is deterministic.
//!
//! Besides the criterion groups, this bench maintains
//! `BENCH_summary_pruning.json` at the repo root and regenerates
//! `docs/results/summary_pruning.md` (per-workload prune-rate table).
//! The gate follows `pt_codec.rs`' protocol — refuse to overwrite on
//! regression (`--force` / `JPORTAL_BENCH_FORCE=1` overrides),
//! `JPORTAL_BENCH_GATE=1` fails CI — but needs only a single signal: the
//! recovery prune rate is a deterministic property of the analysis, so
//! a drop of more than 20% (relative) from the committed baseline is a
//! real regression, not noise. Timings are recorded for context and
//! never gate.

use criterion::{criterion_group, criterion_main, Criterion};
use jportal_analysis::SummaryTable;
use jportal_cfg::Icfg;
use jportal_core::{JPortal, JPortalConfig, JPortalReport};
use jportal_jvm::runtime::{Jvm, JvmConfig};
use jportal_jvm::RunResult;
use jportal_workloads::{workload_by_name, Workload};

/// Recovery-heavy subjects: lossy runs with enough holes that the
/// candidate search dominates (the prefilter's target regime).
const SUBJECTS: &[&str] = &["fop", "h2", "lusearch"];

/// The lossy ring configuration the equivalence suite uses: small
/// buffer, slow drain, real overflow holes on every subject.
fn lossy_run(w: &Workload) -> RunResult {
    Jvm::new(JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        pt_buffer_capacity: 2500,
        drain_bytes_per_kilocycle: 90,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads)
}

fn config(summaries: bool) -> JPortalConfig {
    JPortalConfig {
        summaries,
        ..JPortalConfig::default()
    }
}

fn quick() -> bool {
    std::env::var("JPORTAL_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn force() -> bool {
    std::env::var("JPORTAL_BENCH_FORCE")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--force")
}

fn gate() -> bool {
    std::env::var("JPORTAL_BENCH_GATE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Pulls `"key": <number>` out of the baseline JSON (no parser dep).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Everything the ablation extracts from one subject's on/off run pair.
struct SubjectNumbers {
    name: &'static str,
    /// Recovery candidates that survived the prefilter (summaries on).
    candidates: usize,
    /// Recovery candidates the prefilter rejected.
    pruned: usize,
    /// Matcher restart candidates the summary alphabet screen rejected.
    matcher_pruned: u64,
    /// Holes recovery worked on.
    holes: usize,
}

impl SubjectNumbers {
    fn rate(&self) -> f64 {
        let total = self.candidates + self.pruned;
        if total == 0 {
            0.0
        } else {
            self.pruned as f64 / total as f64
        }
    }
}

/// Same-run equivalence: the reconstructed timelines (entries and hole
/// spans, per thread) must be identical with summaries on and off. This
/// is the contract every prune decision is proved against; a divergence
/// is a correctness bug, so it kills the bench unconditionally.
fn assert_equivalent(name: &str, on: &JPortalReport, off: &JPortalReport) {
    let same = on.threads.len() == off.threads.len()
        && on
            .threads
            .iter()
            .zip(&off.threads)
            .all(|(a, b)| a.entries == b.entries && a.holes == b.holes);
    if !same {
        eprintln!("FAILED: {name}: summaries on/off reconstructions diverge");
        std::process::exit(1);
    }
}

fn measure_subject(name: &'static str) -> SubjectNumbers {
    let w = workload_by_name(name, 1);
    let r = lossy_run(&w);
    let traces = r.traces.as_ref().expect("tracing on");
    let on = JPortal::with_config(&w.program, config(true)).analyze(traces, &r.archive);
    let off = JPortal::with_config(&w.program, config(false)).analyze(traces, &r.archive);
    assert_equivalent(name, &on, &off);
    SubjectNumbers {
        name,
        candidates: on.threads.iter().map(|t| t.recovery.candidates).sum(),
        pruned: on.threads.iter().map(|t| t.recovery.summary_pruned).sum(),
        matcher_pruned: on.dfa_cache.summary_pruned,
        holes: on.threads.iter().map(|t| t.recovery.holes).sum(),
    }
}

struct AblationNumbers {
    subjects: Vec<SubjectNumbers>,
    build_mean_ns: f64,
    on_mean_ns: f64,
    on_min_ns: f64,
    off_mean_ns: f64,
    off_min_ns: f64,
}

impl AblationNumbers {
    fn overall_rate(&self) -> f64 {
        let pruned: usize = self.subjects.iter().map(|s| s.pruned).sum();
        let total: usize = self.subjects.iter().map(|s| s.candidates + s.pruned).sum();
        if total == 0 {
            0.0
        } else {
            pruned as f64 / total as f64
        }
    }
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Writes `BENCH_summary_pruning.json`, refusing to record a prune-rate
/// regression, and failing under `JPORTAL_BENCH_GATE=1` when the overall
/// recovery prune rate drops >20% (relative) below the committed file.
fn write_report(n: &AblationNumbers) {
    let rate = n.overall_rate();
    let path = repo_root().join("BENCH_summary_pruning.json");
    let committed = std::fs::read_to_string(&path).ok();

    if let Some(j) = committed.as_deref() {
        let base = json_number(j, "recovery_prune_rate");
        println!(
            "summary_pruning gate: prune rate {rate:.3} (committed {:.3})",
            base.unwrap_or(0.0)
        );
        if base.map(|b| rate < 0.80 * b).unwrap_or(false) {
            if gate() {
                eprintln!("FAILED: recovery prune rate regressed >20% from the committed baseline");
                std::process::exit(1);
            }
            if !force() {
                println!(
                    "BENCH_summary_pruning.json NOT overwritten (regression; \
                     rerun with --force or JPORTAL_BENCH_FORCE=1)"
                );
                return;
            }
        }
    }

    // Quick-mode timings are too noisy to become the committed baseline:
    // gate against it, never rewrite it. (The prune rate itself is
    // deterministic, but the file carries timings too.)
    if quick() && committed.is_some() {
        return;
    }

    let per_subject: Vec<String> = n
        .subjects
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"candidates\": {}, \"pruned\": {}, \
                 \"rate\": {:.3}, \"matcher_pruned\": {}, \"holes\": {}}}",
                s.name,
                s.candidates,
                s.pruned,
                s.rate(),
                s.matcher_pruned,
                s.holes
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"recovery_prune_rate\": {:.3},\n  \
         \"summary_build_mean_ns\": {:.1},\n  \
         \"analyze_on_mean_ns\": {:.1},\n  \"analyze_on_min_ns\": {:.1},\n  \
         \"analyze_off_mean_ns\": {:.1},\n  \"analyze_off_min_ns\": {:.1},\n  \
         \"analyze_min_ratio_off_over_on\": {:.3},\n  \
         \"subjects\": [\n{}\n  ]\n}}\n",
        rate,
        n.build_mean_ns,
        n.on_mean_ns,
        n.on_min_ns,
        n.off_mean_ns,
        n.off_min_ns,
        n.off_min_ns / n.on_min_ns.max(1.0),
        per_subject.join(",\n"),
    );
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("BENCH_summary_pruning.json not written: {e}");
    } else {
        println!("BENCH_summary_pruning.json: prune rate {rate:.3}");
    }
}

/// Regenerates `docs/results/summary_pruning.md`. Skipped in quick mode
/// when the file exists — CI smoke runs must not overwrite committed
/// numbers with short-window timings.
fn write_markdown(n: &AblationNumbers) {
    let path = repo_root().join("docs/results/summary_pruning.md");
    if quick() && path.exists() {
        return;
    }
    let mut md = String::from(
        "# Interprocedural summary pruning (ablation)\n\n\
         Generated by `cargo bench -p jportal-bench --bench summary_pruning`.\n\n\
         Lossy runs (PT ring 2500 B, drain 90 B/kc, scale 1). Reports are\n\
         verified identical with summaries on/off in the same run before\n\
         anything below is recorded; the prefilter only removes work, never\n\
         candidates that could win (see `Recovery::with_summaries`).\n\n\
         | workload | holes | candidates kept | prefilter-pruned | prune rate | matcher pruned |\n\
         |---|---|---|---|---|---|\n",
    );
    for s in &n.subjects {
        md.push_str(&format!(
            "| {} | {} | {} | {} | {:.1}% | {} |\n",
            s.name,
            s.holes,
            s.candidates,
            s.pruned,
            100.0 * s.rate(),
            s.matcher_pruned
        ));
    }
    md.push_str(&format!(
        "\nOverall recovery prune rate: **{:.1}%** (gated: a >20% relative\n\
         drop fails `JPORTAL_BENCH_GATE=1` runs).\n\n\
         | measurement | mean | min |\n|---|---|---|\n\
         | summary fixpoint build | {:.2} ms | — |\n\
         | analyze, summaries on | {:.2} ms | {:.2} ms |\n\
         | analyze, summaries off | {:.2} ms | {:.2} ms |\n",
        100.0 * n.overall_rate(),
        n.build_mean_ns / 1e6,
        n.on_mean_ns / 1e6,
        n.on_min_ns / 1e6,
        n.off_mean_ns / 1e6,
        n.off_min_ns / 1e6,
    ));
    if let Err(e) = std::fs::write(&path, &md) {
        eprintln!("docs/results/summary_pruning.md not written: {e}");
    } else {
        println!("docs/results/summary_pruning.md regenerated");
    }
}

fn bench_summary_pruning(c: &mut Criterion) {
    // Prune metrics + the same-run equivalence check, measured once.
    let subjects: Vec<SubjectNumbers> = SUBJECTS.iter().map(|&s| measure_subject(s)).collect();

    // Timed sections: the fixpoint build in isolation, then the full
    // pipeline in both modes over one representative subject.
    let w = workload_by_name("h2", 1);
    let r = lossy_run(&w);
    let traces = r.traces.as_ref().expect("tracing on");
    let icfg = Icfg::build(&w.program);

    let mut g = c.benchmark_group("summary_pruning");
    g.bench_function("summary_table_build", |b| {
        b.iter(|| SummaryTable::build(&w.program, &icfg))
    });
    g.bench_function("analyze_summaries_on", |b| {
        let jp = JPortal::with_config(&w.program, config(true));
        b.iter(|| jp.analyze(traces, &r.archive).total_entries())
    });
    g.bench_function("analyze_summaries_off", |b| {
        let jp = JPortal::with_config(&w.program, config(false));
        b.iter(|| jp.analyze(traces, &r.archive).total_entries())
    });
    g.finish();

    let find = |name: &str| {
        c.results
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} not measured"))
            .clone()
    };
    let build = find("summary_table_build");
    let on = find("analyze_summaries_on");
    let off = find("analyze_summaries_off");
    let numbers = AblationNumbers {
        subjects,
        build_mean_ns: build.mean_ns,
        on_mean_ns: on.mean_ns,
        on_min_ns: on.min_ns,
        off_mean_ns: off.mean_ns,
        off_min_ns: off.min_ns,
    };
    write_report(&numbers);
    write_markdown(&numbers);
}

criterion_group!(benches, bench_summary_pruning);
criterion_main!(benches);
