//! PT packet codec throughput: encode and decode of a realistic packet
//! mix (TIPs under last-IP compression, TNT packing, periodic TSC/PSB).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use jportal_ipt::{decode_packets, EncoderConfig, HwEvent, PtEncoder};

fn synthetic_events(n: usize) -> Vec<HwEvent> {
    let mut out = Vec::with_capacity(n);
    let mut ip = 0x7f80_0000_0000u64;
    for i in 0..n {
        match i % 5 {
            0 | 1 => out.push(HwEvent::Cond {
                at: ip,
                taken: i % 3 == 0,
            }),
            2 | 3 => {
                ip = 0x7f80_0000_0000 + ((i as u64 * 2654435761) & 0xFFFF);
                out.push(HwEvent::Indirect {
                    at: ip,
                    target: ip + 0x40,
                });
            }
            _ => out.push(HwEvent::Indirect {
                at: ip,
                target: 0x7f90_0000_0000 + (i as u64 & 0xFFF),
            }),
        }
    }
    out
}

fn encode_stream(events: &[HwEvent]) -> Vec<u8> {
    let mut enc = PtEncoder::new(EncoderConfig {
        buffer_capacity: 1 << 24,
        filter: None,
        tsc_period: 512,
        psb_period: 4096,
    });
    for (i, &e) in events.iter().enumerate() {
        enc.set_time(i as u64);
        enc.event(e);
    }
    enc.finish().bytes
}

fn bench_codec(c: &mut Criterion) {
    let events = synthetic_events(20_000);
    let bytes = encode_stream(&events);

    let mut g = c.benchmark_group("pt_codec");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("encode_20k_events", |b| {
        b.iter_batched(
            || events.clone(),
            |ev| encode_stream(&ev),
            BatchSize::SmallInput,
        )
    });
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("decode_bytes", |b| b.iter(|| decode_packets(&bytes)));
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
