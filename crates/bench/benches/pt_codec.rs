//! PT packet codec throughput: encode and decode of a realistic packet
//! mix (TIPs under last-IP compression, TNT packing, periodic TSC/PSB).
//!
//! Besides the criterion groups, this bench maintains `BENCH_pt_codec.json`
//! at the repo root: decode throughput for the packed table-driven decoder
//! and for the one-packet-at-a-time reference codec, plus their ratio. The
//! file is only overwritten when the numbers do not regress (override with
//! `--force` / `JPORTAL_BENCH_FORCE=1`), and `JPORTAL_BENCH_GATE=1` turns
//! a regression into a hard failure for CI. The gate requires BOTH
//! signals to drop >20% below the committed file before it trips: the
//! absolute min-of-iterations decode throughput, and the same-run
//! min-based speedup over the reference decoder (a hardware-independent
//! ratio). A real decoder regression moves both; measurement noise or a
//! hardware change moves only one.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use jportal_ipt::lastip::LastIp;
use jportal_ipt::packet::decode_one;
use jportal_ipt::{
    decode_packets_into, DecodeScratch, EncoderConfig, HwEvent, Packet, PtEncoder, TimedPacket,
};

fn synthetic_events(n: usize) -> Vec<HwEvent> {
    let mut out = Vec::with_capacity(n);
    let mut ip = 0x7f80_0000_0000u64;
    for i in 0..n {
        match i % 5 {
            0 | 1 => out.push(HwEvent::Cond {
                at: ip,
                taken: i % 3 == 0,
            }),
            2 | 3 => {
                ip = 0x7f80_0000_0000 + ((i as u64 * 2654435761) & 0xFFFF);
                out.push(HwEvent::Indirect {
                    at: ip,
                    target: ip + 0x40,
                });
            }
            _ => out.push(HwEvent::Indirect {
                at: ip,
                target: 0x7f90_0000_0000 + (i as u64 & 0xFFF),
            }),
        }
    }
    out
}

fn encode_stream(events: &[HwEvent]) -> Vec<u8> {
    let mut enc = PtEncoder::new(EncoderConfig {
        buffer_capacity: 1 << 27,
        filter: None,
        tsc_period: 512,
        psb_period: 4096,
    });
    for (i, &e) in events.iter().enumerate() {
        enc.set_time(i as u64);
        enc.event(e);
    }
    enc.finish().bytes
}

/// The one-packet-at-a-time decode loop (the seed's structure): kept as
/// the in-run baseline the packed decoder's speedup is measured against.
fn reference_decode(bytes: &[u8]) -> Vec<TimedPacket> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut last_ip = LastIp::new();
    let mut ts = 0u64;
    while pos < bytes.len() {
        match decode_one(bytes, pos) {
            Some((packet, consumed)) => {
                let resolved = match packet {
                    Packet::Psb | Packet::Ovf => {
                        last_ip.reset();
                        Some(packet)
                    }
                    Packet::Tsc { tsc } => {
                        ts = tsc;
                        Some(packet)
                    }
                    Packet::Tip { compression, ip } => last_ip
                        .decode(compression, ip)
                        .map(|ip| Packet::Tip { compression, ip }),
                    Packet::TipPge { compression, ip } => last_ip
                        .decode(compression, ip)
                        .map(|ip| Packet::TipPge { compression, ip }),
                    Packet::TipPgd { compression, ip } => last_ip
                        .decode(compression, ip)
                        .map(|ip| Packet::TipPgd { compression, ip }),
                    Packet::Fup { compression, ip } => last_ip
                        .decode(compression, ip)
                        .map(|ip| Packet::Fup { compression, ip }),
                    Packet::Pad => None,
                    other => Some(other),
                };
                if let Some(p) = resolved {
                    out.push(TimedPacket {
                        packet: p,
                        offset: pos as u64,
                        ts,
                    });
                }
                pos += consumed;
            }
            None => pos += 1,
        }
    }
    out
}

fn quick() -> bool {
    std::env::var("JPORTAL_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn force() -> bool {
    std::env::var("JPORTAL_BENCH_FORCE")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--force")
}

fn gate() -> bool {
    std::env::var("JPORTAL_BENCH_GATE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Pulls `"key": <number>` out of the baseline JSON (no parser dep).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct CodecNumbers {
    decode_mean_ns: f64,
    decode_min_ns: f64,
    reference_mean_ns: f64,
    reference_min_ns: f64,
    large_mean_ns: f64,
    large_min_ns: f64,
    stream_bytes: usize,
    large_bytes: usize,
}

impl CodecNumbers {
    /// Speedup over the reference, from the fastest observed iterations
    /// (min is far more stable than mean under scheduler noise — the
    /// gate's basis).
    fn speedup_min(&self) -> f64 {
        self.reference_min_ns / self.decode_min_ns
    }
}

/// Writes `BENCH_pt_codec.json` two levels above the bench crate (the
/// repo root), refusing to record a regression, and failing the process
/// under `JPORTAL_BENCH_GATE=1` when `decode_bytes` regresses >20% from
/// the committed file.
///
/// "Regressed" requires BOTH signals to drop >20%, making the check
/// robust to its two noise sources: absolute min throughput (stable on
/// one machine, but shifts across hardware) and same-run speedup over
/// the reference decoder (hardware-independent, but inherits the
/// reference's measurement noise). A genuine decoder regression moves
/// both; noise or a hardware change moves only one.
fn write_codec_report(n: &CodecNumbers) {
    let speedup_min = n.speedup_min();
    let min_tp = min_mib_s(n.stream_bytes, n.decode_min_ns);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_pt_codec.json");
    let committed = std::fs::read_to_string(&path).ok();

    if let Some(j) = committed.as_deref() {
        let base_tp = json_number(j, "decode_bytes_min_mib_per_s");
        let base_speedup = json_number(j, "speedup_vs_reference_min");
        let abs_regressed = base_tp.map(|b| min_tp < 0.80 * b).unwrap_or(false);
        let rel_regressed = base_speedup
            .map(|b| speedup_min < 0.80 * b)
            .unwrap_or(false);
        println!(
            "pt_codec gate: min {min_tp:.1} MiB/s (committed {:.1}), \
             speedup {speedup_min:.2}x (committed {:.2}x)",
            base_tp.unwrap_or(0.0),
            base_speedup.unwrap_or(0.0),
        );
        if abs_regressed && rel_regressed {
            if gate() {
                eprintln!("FAILED: decode_bytes regressed >20% from the committed baseline");
                std::process::exit(1);
            }
            if !force() {
                println!(
                    "BENCH_pt_codec.json NOT overwritten (regression; \
                     rerun with --force or JPORTAL_BENCH_FORCE=1)"
                );
                return;
            }
        }
    }

    // Quick-mode samples are too noisy to become the committed baseline:
    // gate against it, never rewrite it.
    if quick() && committed.is_some() {
        return;
    }

    let json = format!(
        "{{\n  \"decode_bytes_mean_ns\": {:.1},\n  \
         \"decode_bytes_min_ns\": {:.1},\n  \
         \"decode_bytes_mib_per_s\": {:.1},\n  \
         \"decode_bytes_min_mib_per_s\": {:.1},\n  \
         \"reference_decode_mean_ns\": {:.1},\n  \
         \"reference_decode_min_ns\": {:.1},\n  \
         \"reference_decode_mib_per_s\": {:.1},\n  \
         \"speedup_vs_reference\": {:.3},\n  \
         \"speedup_vs_reference_min\": {:.3},\n  \
         \"decode_bytes_large_mean_ns\": {:.1},\n  \
         \"decode_bytes_large_mib_per_s\": {:.1},\n  \
         \"decode_bytes_large_min_mib_per_s\": {:.1},\n  \
         \"stream_bytes\": {},\n  \"large_stream_bytes\": {}\n}}\n",
        n.decode_mean_ns,
        n.decode_min_ns,
        mib_s(n.stream_bytes, n.decode_mean_ns),
        min_tp,
        n.reference_mean_ns,
        n.reference_min_ns,
        mib_s(n.stream_bytes, n.reference_mean_ns),
        n.reference_mean_ns / n.decode_mean_ns,
        speedup_min,
        n.large_mean_ns,
        mib_s(n.large_bytes, n.large_mean_ns),
        min_mib_s(n.large_bytes, n.large_min_ns),
        n.stream_bytes,
        n.large_bytes,
    );
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("BENCH_pt_codec.json not written: {e}");
    } else {
        println!(
            "BENCH_pt_codec.json: decode {:.1} MiB/s (min {min_tp:.1}), \
             reference {:.1} MiB/s, min speedup {speedup_min:.2}x",
            mib_s(n.stream_bytes, n.decode_mean_ns),
            mib_s(n.stream_bytes, n.reference_mean_ns),
        );
    }
}

fn mib_s(bytes: usize, mean_ns: f64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0) / (mean_ns / 1e9)
}

fn min_mib_s(bytes: usize, min_ns: f64) -> f64 {
    mib_s(bytes, min_ns)
}

fn bench_codec(c: &mut Criterion) {
    let events = synthetic_events(20_000);
    let bytes = encode_stream(&events);
    // The large-trace configuration (≥1M events): production-scale
    // streams, where table dispatch and capacity reuse dominate.
    let large_bytes = encode_stream(&synthetic_events(1_000_000));

    let mut g = c.benchmark_group("pt_codec");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("encode_20k_events", |b| {
        b.iter_batched(
            || events.clone(),
            |ev| encode_stream(&ev),
            BatchSize::SmallInput,
        )
    });
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    // Steady-state decode: the scratch is reused across iterations, so
    // after the first iteration the loop allocates nothing per packet.
    g.bench_function("decode_bytes", |b| {
        let mut scratch = DecodeScratch::new();
        b.iter(|| decode_packets_into(&bytes, &mut scratch).len())
    });
    g.bench_function("decode_bytes_reference", |b| {
        b.iter(|| reference_decode(&bytes))
    });
    g.throughput(Throughput::Bytes(large_bytes.len() as u64));
    g.bench_function("decode_bytes_large", |b| {
        let mut scratch = DecodeScratch::new();
        b.iter(|| decode_packets_into(&large_bytes, &mut scratch).len())
    });
    g.finish();

    let find = |name: &str| {
        c.results
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} not measured"))
            .clone()
    };
    let decode = find("decode_bytes");
    let reference = find("decode_bytes_reference");
    let large = find("decode_bytes_large");
    write_codec_report(&CodecNumbers {
        decode_mean_ns: decode.mean_ns,
        decode_min_ns: decode.min_ns,
        reference_mean_ns: reference.mean_ns,
        reference_min_ns: reference.min_ns,
        large_mean_ns: large.mean_ns,
        large_min_ns: large.min_ns,
        stream_bytes: bytes.len(),
        large_bytes: large_bytes.len(),
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
