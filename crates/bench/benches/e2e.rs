//! End-to-end pipeline throughput: per-core traces + metadata in,
//! reconstructed per-thread control flow out (decode → project →
//! recover), on a lossy multi-mode workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jportal_core::JPortal;
use jportal_jvm::runtime::{Jvm, JvmConfig};
use jportal_workloads::workload_by_name;

fn bench_e2e(c: &mut Criterion) {
    let w = workload_by_name("luindex", 3);
    let r = Jvm::new(JvmConfig {
        tracing: true,
        pt_buffer_capacity: 4096,
        drain_bytes_per_kilocycle: 30,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    let traces = r.traces.as_ref().unwrap();
    let bytes: u64 = traces.per_core.iter().map(|t| t.bytes.len() as u64).sum();

    let mut g = c.benchmark_group("e2e");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("analyze_luindex_lossy", |b| {
        let jportal = JPortal::new(&w.program);
        b.iter(|| jportal.analyze(traces, &r.archive))
    });
    g.bench_function("icfg_build", |b| {
        b.iter(|| jportal_cfg::Icfg::build(&w.program))
    });
    g.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
