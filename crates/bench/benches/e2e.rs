//! End-to-end pipeline throughput: per-core traces + metadata in,
//! reconstructed per-thread control flow out (decode → project →
//! recover), on a lossy multi-mode workload.
//!
//! Besides the criterion groups, this bench writes `BENCH_e2e.json` at
//! the repo root: the median end-to-end analysis wall time and the
//! journal/telemetry overhead delta (observability on vs off, median of
//! paired order-alternated runs), so CI keeps a machine-readable record
//! of both numbers per commit. A run that regresses the committed median
//! by more than 10% refuses to overwrite the file unless forced
//! (`--force` or `JPORTAL_BENCH_FORCE=1`), so the committed trajectory
//! can only improve or hold; quick-mode runs (5 reps, too noisy to be a
//! baseline) report against the committed file but never rewrite it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jportal_core::{JPortal, JPortalConfig};
use jportal_jvm::runtime::{Jvm, JvmConfig};
use jportal_workloads::workload_by_name;
use std::time::Instant;

fn quick() -> bool {
    std::env::var("JPORTAL_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn force() -> bool {
    std::env::var("JPORTAL_BENCH_FORCE")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--force")
}

/// Pulls `"key": <number>` out of the committed JSON (no parser dep).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The large-trace subject: a lossless high-scale run that decodes to
/// over a million trace events, exercising the pipeline in the regime
/// where per-event costs dominate per-hole costs. The event count is a
/// deterministic property of the workload, so falling under the floor is
/// a hard failure, not a gate.
const LARGE_EVENT_FLOOR: usize = 1_000_000;

struct LargeNumbers {
    workload: &'static str,
    scale: u32,
    events: usize,
    median_s: f64,
}

impl LargeNumbers {
    fn events_per_second(&self) -> f64 {
        self.events as f64 / self.median_s.max(1e-12)
    }
}

/// Runs and measures the ≥1M-event configuration.
fn measure_large() -> LargeNumbers {
    let (name, scale) = ("lusearch", 130);
    let w = workload_by_name(name, scale);
    let r = Jvm::new(JvmConfig {
        tracing: true,
        // A ring large enough that nothing overflows: this entry measures
        // decode+project throughput on volume, not recovery.
        pt_buffer_capacity: 1 << 22,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    let traces = r.traces.as_ref().unwrap();
    let jp = JPortal::new(&w.program);
    let events = jp.analyze(traces, &r.archive).total_entries(); // warm-up
    if events < LARGE_EVENT_FLOOR {
        eprintln!("FAILED: large-trace config decoded {events} events (< {LARGE_EVENT_FLOOR})");
        std::process::exit(1);
    }
    let reps = if quick() { 3 } else { 9 };
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        criterion::black_box(jp.analyze(traces, &r.archive));
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    LargeNumbers {
        workload: name,
        scale,
        events,
        median_s: times[times.len() / 2],
    }
}

/// Measures the end-to-end medians and writes `BENCH_e2e.json` two
/// levels above the bench crate (the repo root).
fn write_e2e_report(
    w: &jportal_workloads::Workload,
    r: &jportal_jvm::RunResult,
    large: &LargeNumbers,
) {
    let traces = r.traces.as_ref().unwrap();
    let reps = if quick() { 5 } else { 15 };
    let build = |observability: bool| {
        JPortal::with_config(
            &w.program,
            JPortalConfig {
                observability,
                ..JPortalConfig::default()
            },
        )
    };
    let jp_off = build(false);
    let jp_on = build(true);
    let measure = |jp: &JPortal| -> f64 {
        let t0 = Instant::now();
        criterion::black_box(jp.analyze(traces, &r.archive));
        t0.elapsed().as_secs_f64()
    };
    measure(&jp_off); // warm-up
    measure(&jp_on);
    // Paired, order-alternated samples (same scheme as `observe
    // --overhead`): clock drift hits both sides of a pair equally and
    // the median discards outlier reps.
    let mut off = Vec::with_capacity(reps);
    let mut on = Vec::with_capacity(reps);
    for i in 0..reps {
        if i % 2 == 0 {
            off.push(measure(&jp_off));
            on.push(measure(&jp_on));
        } else {
            on.push(measure(&jp_on));
            off.push(measure(&jp_off));
        }
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let off_median = median(&mut off);
    let on_median = median(&mut on);
    let delta = on_median / off_median - 1.0;

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_e2e.json");
    if let Ok(json) = std::fs::read_to_string(&path) {
        let committed = json_number(&json, "e2e_median_seconds");
        if let Some(committed) = committed {
            if off_median > committed * 1.10 && !force() {
                println!(
                    "BENCH_e2e.json NOT overwritten: median {:.3} ms regresses the committed \
                     {:.3} ms by >10% (rerun with --force or JPORTAL_BENCH_FORCE=1)",
                    off_median * 1e3,
                    committed * 1e3
                );
                return;
            }
        }
        // Dual-signal gate on the large entry: wall time alone is not a
        // regression when the event count moved with it, so the committed
        // file is only protected when the median worsens >10% *and* the
        // per-event throughput drops >10% too.
        let base_large = json_number(&json, "large_median_seconds");
        let base_eps = json_number(&json, "large_events_per_second");
        if let (Some(bm), Some(be)) = (base_large, base_eps) {
            let slower = large.median_s > bm * 1.10;
            let less_throughput = large.events_per_second() < be * 0.90;
            if slower && less_throughput && !force() {
                println!(
                    "BENCH_e2e.json NOT overwritten: large-trace median {:.1} ms and \
                     throughput {:.0} ev/s both regress >10% (committed {:.1} ms, {:.0} ev/s)",
                    large.median_s * 1e3,
                    large.events_per_second(),
                    bm * 1e3,
                    be
                );
                return;
            }
        }
        // Quick-mode medians are too noisy to become the committed
        // baseline: report against it, never rewrite it.
        if committed.is_some() && quick() && !force() {
            println!(
                "BENCH_e2e.json kept (quick mode): measured median {:.3} ms vs committed {:.3} ms",
                off_median * 1e3,
                committed.unwrap_or(0.0) * 1e3
            );
            return;
        }
    }

    let json = format!(
        "{{\n  \"workload\": \"{}\",\n  \"iterations\": {reps},\n  \
         \"e2e_median_seconds\": {off_median:.6},\n  \
         \"e2e_with_journal_median_seconds\": {on_median:.6},\n  \
         \"journal_overhead_delta\": {delta:.4},\n  \
         \"large_workload\": \"{}@{}\",\n  \
         \"large_total_events\": {},\n  \
         \"large_median_seconds\": {:.6},\n  \
         \"large_events_per_second\": {:.0}\n}}\n",
        w.name,
        large.workload,
        large.scale,
        large.events,
        large.median_s,
        large.events_per_second()
    );
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("BENCH_e2e.json not written: {e}");
    } else {
        println!(
            "BENCH_e2e.json: e2e median {:.3} ms, journal overhead {:+.1}%, \
             large trace {} events at {:.0} ev/s",
            off_median * 1e3,
            delta * 100.0,
            large.events,
            large.events_per_second()
        );
    }
}

fn bench_e2e(c: &mut Criterion) {
    let w = workload_by_name("luindex", 3);
    let r = Jvm::new(JvmConfig {
        tracing: true,
        pt_buffer_capacity: 4096,
        drain_bytes_per_kilocycle: 30,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    let traces = r.traces.as_ref().unwrap();
    let bytes: u64 = traces.per_core.iter().map(|t| t.bytes.len() as u64).sum();

    let mut g = c.benchmark_group("e2e");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("analyze_luindex_lossy", |b| {
        let jportal = JPortal::new(&w.program);
        b.iter(|| jportal.analyze(traces, &r.archive))
    });
    g.bench_function("icfg_build", |b| {
        b.iter(|| jportal_cfg::Icfg::build(&w.program))
    });
    g.finish();

    let large = measure_large();
    write_e2e_report(&w, &r, &large);
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
