//! The nine DaCapo-analog workloads.

use jportal_bytecode::builder::ProgramBuilder;
use jportal_bytecode::{CmpKind, Instruction as I, Program};
use jportal_jvm::runtime::ThreadSpec;

use crate::gen::{
    add_leaf_methods, add_visitor_hierarchy, emit_arith_chain, emit_counted_loop, Lcg,
};

/// The analog benchmark names, in the paper's Table 1 order.
pub const WORKLOAD_NAMES: [&str; 9] = [
    "avrora", "batik", "fop", "h2", "jython", "luindex", "lusearch", "pmd", "sunflow",
];

/// One runnable workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// DaCapo benchmark this is an analog of.
    pub name: &'static str,
    /// Version string mirrored from the paper's Table 1.
    pub version: &'static str,
    /// The generated program.
    pub program: Program,
    /// The threads to run.
    pub threads: Vec<ThreadSpec>,
    /// Whether the analog is multi-threaded (Table 1's last column).
    pub multithreaded: bool,
}

impl Workload {
    fn single(name: &'static str, version: &'static str, program: Program) -> Workload {
        let threads = vec![ThreadSpec {
            method: program.entry(),
            args: vec![],
        }];
        Workload {
            name,
            version,
            program,
            threads,
            multithreaded: false,
        }
    }

    fn multi(
        name: &'static str,
        version: &'static str,
        program: Program,
        n_threads: usize,
    ) -> Workload {
        let threads = (0..n_threads)
            .map(|_| ThreadSpec {
                method: program.entry(),
                args: vec![],
            })
            .collect();
        Workload {
            name,
            version,
            program,
            threads,
            multithreaded: true,
        }
    }
}

/// Builds all nine analogs at the given scale (1 = test-sized; the
/// evaluation harness uses larger scales).
pub fn all_workloads(scale: u32) -> Vec<Workload> {
    vec![
        avrora(scale),
        batik(scale),
        fop(scale),
        h2(scale),
        jython(scale),
        luindex(scale),
        lusearch(scale),
        pmd(scale),
        sunflow(scale),
    ]
}

/// Builds one analog by name.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn workload_by_name(name: &str, scale: u32) -> Workload {
    match name {
        "avrora" => avrora(scale),
        "batik" => batik(scale),
        "fop" => fop(scale),
        "h2" => h2(scale),
        "jython" => jython(scale),
        "luindex" => luindex(scale),
        "lusearch" => lusearch(scale),
        "pmd" => pmd(scale),
        "sunflow" => sunflow(scale),
        other => panic!("unknown workload {other:?}"),
    }
}

/// avrora analog: an instruction-dispatch interpreter over a synthetic
/// "AVR program" held in an array — switch-dense control flow.
pub fn avrora(scale: u32) -> Workload {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("Avrora", None, 0);
    let mut rng = Lcg::new(0xA17A);

    // Handlers for 6 "machine opcodes".
    let mut handlers = Vec::new();
    for i in 0..6 {
        let mut m = pb.method(c, format!("op{i}"), 1, true);
        emit_arith_chain(&mut m, 1 + (i % 3), &mut rng);
        m.emit(I::Iload(0));
        m.emit(I::Ireturn);
        handlers.push(m.finish());
    }

    let mut m = pb.method(c, "main", 0, false);
    m.reserve_locals(4);
    // locals: 0 = acc, 1 = loop counter, 2 = pc-ish value
    let iters = 60 * scale as i64;
    emit_counted_loop(&mut m, 1, iters, |m| {
        // opcode = (counter * 7) % 6, dispatched by tableswitch.
        m.emit(I::Iload(1));
        m.emit(I::Iconst(7));
        m.emit(I::Imul);
        m.emit(I::Iconst(6));
        m.emit(I::Irem);
        let arms: Vec<_> = (0..6).map(|_| m.label()).collect();
        let default = m.label();
        let join = m.label();
        m.table_switch(0, &arms, default);
        for (i, &arm) in arms.iter().enumerate() {
            m.bind(arm);
            m.emit(I::Iload(0));
            m.emit(I::InvokeStatic(handlers[i]));
            m.emit(I::Istore(0));
            m.jump(join);
        }
        m.bind(default);
        m.emit(I::Iinc(0, 1));
        m.bind(join);
    });
    m.emit(I::Return);
    let main = m.finish();
    Workload::single("avrora", "1.7.110", pb.finish_with_entry(main).unwrap())
}

/// batik analog: virtual-dispatch "rendering" over a shape hierarchy.
pub fn batik(scale: u32) -> Workload {
    let mut pb = ProgramBuilder::new();
    let mut rng = Lcg::new(0xBA71C);
    let (base, slot, subs) = add_visitor_hierarchy(&mut pb, 8, &mut rng);
    let c = pb.add_class("Batik", None, 0);
    let mut m = pb.method(c, "main", 0, false);
    m.reserve_locals(4);
    // Allocate one object per subclass into locals 2.. via repeated use.
    let iters = 40 * scale as i64;
    let subs2 = subs.clone();
    emit_counted_loop(&mut m, 1, iters, |m| {
        for (i, &sub) in subs2.iter().enumerate() {
            if i % 2 == 0 {
                m.emit(I::New(sub));
                m.emit(I::Iload(1));
                m.emit(I::InvokeVirtual {
                    declared_in: base,
                    slot,
                });
                m.emit(I::Istore(0));
            }
        }
        m.emit(I::Iload(0));
        m.emit(I::Iconst(3));
        m.emit(I::Iand);
        m.emit(I::Istore(0));
    });
    m.emit(I::Return);
    let main = m.finish();
    Workload::single("batik", "1.7", pb.finish_with_entry(main).unwrap())
}

/// fop analog: recursive layout over an implicit document tree.
pub fn fop(scale: u32) -> Workload {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("Fop", None, 0);
    // layout(depth): if depth <= 0 return 1 else layout(d-1)*2 + layout(d-2)
    let mut m = pb.method(c, "layout", 1, true);
    let id = m.id();
    let base = m.label();
    m.emit(I::Iload(0));
    m.branch_if(CmpKind::Le, base);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(1));
    m.emit(I::Isub);
    m.emit(I::InvokeStatic(id));
    m.emit(I::Iconst(2));
    m.emit(I::Imul);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(2));
    m.emit(I::Isub);
    m.emit(I::InvokeStatic(id));
    m.emit(I::Iadd);
    m.emit(I::Ireturn);
    m.bind(base);
    m.emit(I::Iconst(1));
    m.emit(I::Ireturn);
    let layout = m.finish();

    // measure(w): line measurement with a small scan loop.
    let mut m = pb.method(c, "measure", 1, true);
    m.reserve_locals(2);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(80));
    m.branch_if_icmp(CmpKind::Le, done);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(2));
    m.emit(I::Idiv);
    m.emit(I::Istore(0));
    m.jump(head);
    m.bind(done);
    m.emit(I::Iload(0));
    m.emit(I::Ireturn);
    let measure = m.finish();

    // break_line(w): hyphenation decision.
    let mut m = pb.method(c, "break_line", 1, true);
    let narrow = m.label();
    let done = m.label();
    m.emit(I::Iload(0));
    m.emit(I::Iconst(40));
    m.branch_if_icmp(CmpKind::Lt, narrow);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(40));
    m.emit(I::Isub);
    m.jump(done);
    m.bind(narrow);
    m.emit(I::Iload(0));
    m.bind(done);
    m.emit(I::Ireturn);
    let break_line = m.finish();

    let mut m = pb.method(c, "main", 0, false);
    m.reserve_locals(3);
    let depth = 7 + (scale.min(8)) as i64;
    emit_counted_loop(&mut m, 1, 4 * scale as i64, move |m| {
        m.emit(I::Iconst(depth));
        m.emit(I::InvokeStatic(layout));
        m.emit(I::InvokeStatic(measure));
        m.emit(I::InvokeStatic(break_line));
        m.emit(I::Pop);
    });
    m.emit(I::Return);
    let main = m.finish();
    Workload::single("fop", "0.95", pb.finish_with_entry(main).unwrap())
}

/// h2 analog: hash-join over two array "tables", multi-threaded.
pub fn h2(scale: u32) -> Workload {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("H2", None, 0);

    // probe(key, size) = linear-probe hash lookup simulation.
    let mut m = pb.method(c, "probe", 2, true);
    let head = m.label();
    let done = m.label();
    m.reserve_locals(3);
    m.emit(I::Iload(0));
    m.emit(I::Iload(1));
    m.emit(I::Irem);
    m.emit(I::Istore(2));
    m.bind(head);
    m.emit(I::Iload(2));
    m.emit(I::Iconst(3));
    m.emit(I::Irem);
    m.branch_if(CmpKind::Eq, done);
    m.emit(I::Iinc(2, 1));
    m.jump(head);
    m.bind(done);
    m.emit(I::Iload(2));
    m.emit(I::Ireturn);
    let probe = m.finish();

    // hash(key): row hashing.
    let mut m = pb.method(c, "hash", 1, true);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(2654435));
    m.emit(I::Imul);
    m.emit(I::Iload(0));
    m.emit(I::Ixor);
    m.emit(I::Ireturn);
    let hash = m.finish();

    // compare(a, b): three-way comparison, branchy.
    let mut m = pb.method(c, "compare", 2, true);
    let lt = m.label();
    let gt = m.label();
    m.emit(I::Iload(0));
    m.emit(I::Iload(1));
    m.branch_if_icmp(CmpKind::Lt, lt);
    m.emit(I::Iload(0));
    m.emit(I::Iload(1));
    m.branch_if_icmp(CmpKind::Gt, gt);
    m.emit(I::Iconst(0));
    m.emit(I::Ireturn);
    m.bind(lt);
    m.emit(I::Iconst(-1));
    m.emit(I::Ireturn);
    m.bind(gt);
    m.emit(I::Iconst(1));
    m.emit(I::Ireturn);
    let compare = m.finish();

    let mut m = pb.method(c, "main", 0, false);
    m.reserve_locals(6);
    let rows = 50 * scale as i64;
    // Build table: arr = new int[64]; arr[i % 64] = i*7
    m.emit(I::Iconst(64));
    m.emit(I::NewArray);
    m.emit(I::Astore(3));
    emit_counted_loop(&mut m, 1, rows, |m| {
        m.emit(I::Aload(3));
        m.emit(I::Iload(1));
        m.emit(I::Iconst(64));
        m.emit(I::Irem);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(7));
        m.emit(I::Imul);
        m.emit(I::ArrayStore);
    });
    // Join: for each row, hash, probe, compare and accumulate.
    emit_counted_loop(&mut m, 2, rows, |m| {
        m.emit(I::Iload(2));
        m.emit(I::InvokeStatic(hash));
        m.emit(I::Iconst(65));
        m.emit(I::InvokeStatic(probe));
        m.emit(I::Istore(4));
        m.emit(I::Iload(4));
        m.emit(I::Iload(2));
        m.emit(I::InvokeStatic(compare));
        m.emit(I::Pop);
        m.emit(I::Aload(3));
        m.emit(I::Iload(4));
        m.emit(I::Iconst(64));
        m.emit(I::Irem);
        m.emit(I::ArrayLoad);
        m.emit(I::Iload(0));
        m.emit(I::Iadd);
        m.emit(I::Istore(0));
    });
    m.emit(I::Return);
    let main = m.finish();
    Workload::multi("h2", "1.2.121", pb.finish_with_entry(main).unwrap(), 3)
}

/// jython analog: deep chains of tiny methods — call-dense.
pub fn jython(scale: u32) -> Workload {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("Jython", None, 0);
    let mut rng = Lcg::new(0x171107);
    let leaves = add_leaf_methods(&mut pb, c, 12, &mut rng);

    // Chain methods: chain_i(x) = leaf_i(chain_{i+1}(x)).
    let mut chain_ids = Vec::new();
    for i in 0..6usize {
        let m = pb.method(c, format!("chain{i}"), 1, true);
        chain_ids.push(m.id());
        // Bodies are filled below once all ids exist; finish a stub now is
        // impossible — instead emit directly since callee ids are known
        // only for i+1... build in reverse instead.
        drop(m);
        // placeholder: real body built in reverse order below
    }
    // The above reserved ids without finishing; rebuild properly:
    // (ProgramBuilder requires finishing every started method, so build
    // the chain bottom-up in reverse.)
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("Jython", None, 0);
    let mut rng = Lcg::new(0x171107);
    let leaves = {
        let _ = leaves;
        add_leaf_methods(&mut pb, c, 12, &mut rng)
    };
    let mut prev: Option<jportal_bytecode::MethodId> = None;
    let mut first = None;
    for i in (0..6usize).rev() {
        let mut m = pb.method(c, format!("chain{i}"), 1, true);
        m.emit(I::Iload(0));
        if let Some(p) = prev {
            m.emit(I::InvokeStatic(p));
        }
        m.emit(I::InvokeStatic(leaves[i % leaves.len()]));
        m.emit(I::Ireturn);
        let id = m.finish();
        prev = Some(id);
        first = Some(id);
    }
    let chain_head = first.expect("non-empty chain");
    let _ = chain_ids;

    let mut m = pb.method(c, "main", 0, false);
    m.reserve_locals(3);
    emit_counted_loop(&mut m, 1, 50 * scale as i64, |m| {
        m.emit(I::Iload(1));
        m.emit(I::InvokeStatic(chain_head));
        m.emit(I::Pop);
    });
    m.emit(I::Return);
    let main = m.finish();
    Workload::single("jython", "2.5.1", pb.finish_with_entry(main).unwrap())
}

/// luindex analog: tokenising and index-insertion loops over arrays.
pub fn luindex(scale: u32) -> Workload {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("Luindex", None, 0);
    let mut rng = Lcg::new(0x10DE);

    // hash(x) = mixing function.
    let mut m = pb.method(c, "hash", 1, true);
    emit_arith_chain(&mut m, 2, &mut rng);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(31));
    m.emit(I::Imul);
    m.emit(I::Iconst(47));
    m.emit(I::Iand);
    m.emit(I::Ireturn);
    let hash = m.finish();

    // tokenize(doc) = branchy token classification.
    let mut m = pb.method(c, "tokenize", 1, true);
    let word = m.label();
    let done = m.label();
    m.emit(I::Iload(0));
    m.emit(I::Iconst(4));
    m.emit(I::Irem);
    m.branch_if(CmpKind::Ne, word);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(2));
    m.emit(I::Ishr);
    m.jump(done);
    m.bind(word);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(13));
    m.emit(I::Imul);
    m.bind(done);
    m.emit(I::Ireturn);
    let tokenize = m.finish();

    // stem(x): normalize token.
    let mut m = pb.method(c, "stem", 1, true);
    let neg = m.label();
    let done = m.label();
    m.emit(I::Iload(0));
    m.branch_if(CmpKind::Lt, neg);
    m.emit(I::Iload(0));
    m.jump(done);
    m.bind(neg);
    m.emit(I::Iload(0));
    m.emit(I::Ineg);
    m.bind(done);
    m.emit(I::Ireturn);
    let stem = m.finish();

    let mut m = pb.method(c, "main", 0, false);
    m.reserve_locals(6);
    m.emit(I::Iconst(48));
    m.emit(I::NewArray);
    m.emit(I::Astore(3));
    let docs = 25 * scale as i64;
    emit_counted_loop(&mut m, 1, docs, |m| {
        // token = hash(stem(tokenize(i)))
        m.emit(I::Iload(1));
        m.emit(I::InvokeStatic(tokenize));
        m.emit(I::InvokeStatic(stem));
        m.emit(I::InvokeStatic(hash));
        m.emit(I::Istore(2));
        // insertion scan: while arr[t] != 0 && t < 47: t++
        let scan = m.label();
        let ins = m.label();
        m.bind(scan);
        m.emit(I::Aload(3));
        m.emit(I::Iload(2));
        m.emit(I::ArrayLoad);
        m.branch_if(CmpKind::Eq, ins);
        m.emit(I::Iload(2));
        m.emit(I::Iconst(46));
        m.branch_if_icmp(CmpKind::Ge, ins);
        m.emit(I::Iinc(2, 1));
        m.jump(scan);
        m.bind(ins);
        m.emit(I::Aload(3));
        m.emit(I::Iload(2));
        m.emit(I::Iload(1));
        m.emit(I::ArrayStore);
        // Periodically clear the index (keeps insertion scans bounded).
        let skip = m.label();
        m.emit(I::Iload(1));
        m.emit(I::Iconst(24));
        m.emit(I::Irem);
        m.branch_if(CmpKind::Ne, skip);
        m.emit(I::Iconst(48));
        m.emit(I::NewArray);
        m.emit(I::Astore(3));
        m.bind(skip);
    });
    m.emit(I::Return);
    let main = m.finish();
    Workload::single("luindex", "2.4.1", pb.finish_with_entry(main).unwrap())
}

/// lusearch analog: multi-threaded query loops over a shared "index".
pub fn lusearch(scale: u32) -> Workload {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("Lusearch", None, 0);

    // score(q) = branchy term scoring.
    let mut m = pb.method(c, "score", 1, true);
    let hi = m.label();
    let done = m.label();
    m.emit(I::Iload(0));
    m.emit(I::Iconst(16));
    m.emit(I::Irem);
    m.emit(I::Iconst(8));
    m.branch_if_icmp(CmpKind::Gt, hi);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(2));
    m.emit(I::Imul);
    m.jump(done);
    m.bind(hi);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(3));
    m.emit(I::Iadd);
    m.bind(done);
    m.emit(I::Ireturn);
    let score = m.finish();

    // normalize(x): score normalization.
    let mut m = pb.method(c, "normalize", 1, true);
    let neg = m.label();
    let done = m.label();
    m.emit(I::Iload(0));
    m.branch_if(CmpKind::Lt, neg);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(255));
    m.emit(I::Iand);
    m.jump(done);
    m.bind(neg);
    m.emit(I::Iconst(0));
    m.bind(done);
    m.emit(I::Ireturn);
    let normalize = m.finish();

    // combine(a, b): rank combination.
    let mut m = pb.method(c, "combine", 2, true);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(3));
    m.emit(I::Imul);
    m.emit(I::Iload(1));
    m.emit(I::Iadd);
    m.emit(I::Iconst(2));
    m.emit(I::Idiv);
    m.emit(I::Ireturn);
    let combine = m.finish();

    let mut m = pb.method(c, "main", 0, false);
    m.reserve_locals(3);
    emit_counted_loop(&mut m, 1, 60 * scale as i64, |m| {
        m.emit(I::Iload(1));
        m.emit(I::InvokeStatic(score));
        m.emit(I::InvokeStatic(normalize));
        m.emit(I::Iload(0));
        m.emit(I::InvokeStatic(combine));
        m.emit(I::Istore(0));
    });
    m.emit(I::Return);
    let main = m.finish();
    Workload::multi("lusearch", "2.4.1", pb.finish_with_entry(main).unwrap(), 4)
}

/// pmd analog: AST visiting with a class hierarchy and rule switches,
/// multi-threaded.
pub fn pmd(scale: u32) -> Workload {
    let mut pb = ProgramBuilder::new();
    let mut rng = Lcg::new(0x9319D);
    let (base, slot, subs) = add_visitor_hierarchy(&mut pb, 6, &mut rng);
    let c = pb.add_class("Pmd", None, 0);

    let mut m = pb.method(c, "main", 0, false);
    m.reserve_locals(4);
    let subs2 = subs.clone();
    emit_counted_loop(&mut m, 1, 30 * scale as i64, |m| {
        // Rule selection by lookupswitch over the node kind.
        m.emit(I::Iload(1));
        m.emit(I::Iconst(5));
        m.emit(I::Irem);
        let r0 = m.label();
        let r1 = m.label();
        let def = m.label();
        let join = m.label();
        m.lookup_switch(&[(0, r0), (3, r1)], def);
        m.bind(r0);
        m.emit(I::New(subs2[0]));
        m.emit(I::Iload(1));
        m.emit(I::InvokeVirtual {
            declared_in: base,
            slot,
        });
        m.emit(I::Istore(0));
        m.jump(join);
        m.bind(r1);
        m.emit(I::New(subs2[3]));
        m.emit(I::Iload(1));
        m.emit(I::InvokeVirtual {
            declared_in: base,
            slot,
        });
        m.emit(I::Istore(0));
        m.jump(join);
        m.bind(def);
        m.emit(I::New(subs2[5]));
        m.emit(I::Iload(1));
        m.emit(I::InvokeVirtual {
            declared_in: base,
            slot,
        });
        m.emit(I::Istore(0));
        m.bind(join);
    });
    m.emit(I::Return);
    let main = m.finish();
    Workload::multi("pmd", "4.2.5", pb.finish_with_entry(main).unwrap(), 3)
}

/// sunflow analog: tight numeric inner loops with per-bounce shading
/// calls — the paper's highest trace-rate subject.
pub fn sunflow(scale: u32) -> Workload {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("Sunflow", None, 0);

    // intersect(x): bounding test.
    let mut m = pb.method(c, "intersect", 1, true);
    let miss = m.label();
    let done = m.label();
    m.emit(I::Iload(0));
    m.emit(I::Iconst(7));
    m.emit(I::Iand);
    m.branch_if(CmpKind::Eq, miss);
    m.emit(I::Iconst(1));
    m.jump(done);
    m.bind(miss);
    m.emit(I::Iconst(0));
    m.bind(done);
    m.emit(I::Ireturn);
    let intersect = m.finish();

    // shade(x): shading arithmetic.
    let mut m = pb.method(c, "shade", 1, true);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(5));
    m.emit(I::Imul);
    m.emit(I::Iconst(255));
    m.emit(I::Iand);
    m.emit(I::Ireturn);
    let shade = m.finish();

    // trace_ray(x): Collatz-ish bounce loop; every bounce intersects and
    // shades — call-dense even when fully JIT-compiled, which is what
    // gives sunflow the suite's highest packet rate.
    let mut m = pb.method(c, "trace_ray", 1, true);
    m.reserve_locals(3);
    let head = m.label();
    let done = m.label();
    let even = m.label();
    let cont = m.label();
    m.emit(I::Iconst(24));
    m.emit(I::Istore(1));
    m.bind(head);
    m.emit(I::Iload(1));
    m.branch_if(CmpKind::Le, done);
    m.emit(I::Iload(0));
    m.emit(I::InvokeStatic(intersect));
    m.emit(I::Pop);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(2));
    m.emit(I::Irem);
    m.branch_if(CmpKind::Eq, even);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(3));
    m.emit(I::Imul);
    m.emit(I::Iconst(1));
    m.emit(I::Iadd);
    m.emit(I::InvokeStatic(shade));
    m.emit(I::Istore(0));
    m.jump(cont);
    m.bind(even);
    m.emit(I::Iload(0));
    m.emit(I::Iconst(2));
    m.emit(I::Idiv);
    m.emit(I::InvokeStatic(shade));
    m.emit(I::Istore(0));
    m.bind(cont);
    m.emit(I::Iinc(1, -1));
    m.jump(head);
    m.bind(done);
    m.emit(I::Iload(0));
    m.emit(I::Ireturn);
    let trace_ray = m.finish();

    let mut m = pb.method(c, "main", 0, false);
    m.reserve_locals(3);
    emit_counted_loop(&mut m, 1, 40 * scale as i64, |m| {
        m.emit(I::Iload(1));
        m.emit(I::Iconst(977));
        m.emit(I::Imul);
        m.emit(I::Iconst(1));
        m.emit(I::Iadd);
        m.emit(I::InvokeStatic(trace_ray));
        m.emit(I::Pop);
    });
    m.emit(I::Return);
    let main = m.finish();
    Workload::single("sunflow", "0.07.2", pb.finish_with_entry(main).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_jvm::runtime::{Jvm, JvmConfig};

    #[test]
    fn all_nine_build_and_run_clean() {
        for w in all_workloads(1) {
            let jvm = Jvm::new(JvmConfig {
                tracing: false,
                cores: if w.multithreaded { 2 } else { 1 },
                ..JvmConfig::default()
            });
            let r = jvm.run_threads(&w.program, &w.threads);
            assert!(
                r.thread_errors.is_empty(),
                "{} failed: {:?}",
                w.name,
                r.thread_errors
            );
            assert!(r.truth.total_events() > 500, "{} too small", w.name);
        }
    }

    #[test]
    fn names_are_stable_and_lookup_works() {
        for name in WORKLOAD_NAMES {
            let w = workload_by_name(name, 1);
            assert_eq!(w.name, name);
        }
        let all = all_workloads(1);
        assert_eq!(all.len(), 9);
        let multi: Vec<&str> = all
            .iter()
            .filter(|w| w.multithreaded)
            .map(|w| w.name)
            .collect();
        assert_eq!(multi, vec!["h2", "lusearch", "pmd"], "paper's threading");
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_name_panics() {
        workload_by_name("xalan", 1);
    }

    #[test]
    fn scale_grows_work() {
        let small = workload_by_name("sunflow", 1);
        let big = workload_by_name("sunflow", 3);
        let run = |w: &Workload| {
            Jvm::new(JvmConfig {
                tracing: false,
                record_truth_trace: false,
                // Pin the mode so cycles scale linearly with work.
                c1_threshold: u64::MAX,
                c2_threshold: u64::MAX,
                ..JvmConfig::default()
            })
            .run_threads(&w.program, &w.threads)
            .wall_cycles
        };
        assert!(run(&big) > 2 * run(&small));
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = workload_by_name("avrora", 1);
        let b = workload_by_name("avrora", 1);
        assert_eq!(a.program, b.program);
    }
}
