//! Workload characteristics (the paper's Table 1).

use crate::suite::Workload;

/// One Table 1 row: the analog's static characteristics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Characteristics {
    /// Benchmark name.
    pub name: String,
    /// Mirrored DaCapo version string.
    pub version: String,
    /// Bytecode instructions (the "LoC" analog).
    pub instructions: usize,
    /// Method count.
    pub methods: usize,
    /// Class count.
    pub classes: usize,
    /// "single" or "multiple" (Table 1's Threaded column).
    pub threaded: &'static str,
    /// Number of threads the workload runs.
    pub threads: usize,
}

/// Computes the characteristics row of one workload.
pub fn characteristics(w: &Workload) -> Characteristics {
    Characteristics {
        name: w.name.to_string(),
        version: w.version.to_string(),
        instructions: w.program.code_size(),
        methods: w.program.method_count(),
        classes: w.program.class_count(),
        threaded: if w.multithreaded {
            "multiple"
        } else {
            "single"
        },
        threads: w.threads.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::all_workloads;

    #[test]
    fn characteristics_are_consistent() {
        for w in all_workloads(1) {
            let c = characteristics(&w);
            assert_eq!(c.name, w.name);
            assert!(c.instructions > 20, "{}: too little code", c.name);
            assert!(c.methods >= 1);
            assert!(c.classes >= 1);
            if w.multithreaded {
                assert_eq!(c.threaded, "multiple");
                assert!(c.threads > 1);
            } else {
                assert_eq!(c.threaded, "single");
                assert_eq!(c.threads, 1);
            }
        }
    }

    #[test]
    fn jython_is_call_dense_and_avrora_switch_dense() {
        use jportal_bytecode::Instruction;
        let find = |name: &str| {
            all_workloads(1)
                .into_iter()
                .find(|w| w.name == name)
                .unwrap()
        };
        let jy = find("jython");
        let calls = jy
            .program
            .methods()
            .flat_map(|(_, m)| m.code.iter())
            .filter(|i| i.is_call())
            .count();
        assert!(calls >= 8, "jython analog must be call-dense");
        let av = find("avrora");
        let switches = av
            .program
            .methods()
            .flat_map(|(_, m)| m.code.iter())
            .filter(|i| matches!(i, Instruction::TableSwitch { .. }))
            .count();
        assert!(switches >= 1, "avrora analog must dispatch via switch");
    }
}
