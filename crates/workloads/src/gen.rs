//! Shared code-generation utilities for the workload suite.

use jportal_bytecode::builder::{MethodBuilder, ProgramBuilder};
use jportal_bytecode::{ClassId, CmpKind, Instruction as I, MethodId};

/// Small deterministic RNG (xorshift*) for structural variety.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Seeds the generator (0 is remapped).
    pub fn new(seed: u64) -> Lcg {
        Lcg {
            state: seed.max(1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Emits a chain of `n` arithmetic operations on local 0, varying the
/// opcode mix by `rng`.
pub fn emit_arith_chain(m: &mut MethodBuilder<'_>, n: usize, rng: &mut Lcg) {
    for _ in 0..n {
        m.emit(I::Iload(0));
        m.emit(I::Iconst(1 + rng.below(7) as i64));
        match rng.below(6) {
            0 => m.emit(I::Iadd),
            1 => m.emit(I::Isub),
            2 => m.emit(I::Imul),
            3 => m.emit(I::Ixor),
            4 => m.emit(I::Iand),
            _ => m.emit(I::Ior),
        };
        m.emit(I::Istore(0));
    }
}

/// Emits a counted loop running `iters` iterations with `body` emitted
/// inside; the loop counter lives in `counter_slot`.
pub fn emit_counted_loop(
    m: &mut MethodBuilder<'_>,
    counter_slot: u16,
    iters: i64,
    body: impl FnOnce(&mut MethodBuilder<'_>),
) {
    let head = m.label();
    let done = m.label();
    m.emit(I::Iconst(iters));
    m.emit(I::Istore(counter_slot));
    m.bind(head);
    m.emit(I::Iload(counter_slot));
    m.branch_if(CmpKind::Le, done);
    body(m);
    m.emit(I::Iinc(counter_slot, -1));
    m.jump(head);
    m.bind(done);
}

/// Adds a family of `n` tiny leaf methods `leaf_i(x) = f(x)` and returns
/// their ids (jython-style call fodder).
pub fn add_leaf_methods(
    pb: &mut ProgramBuilder,
    class: ClassId,
    n: usize,
    rng: &mut Lcg,
) -> Vec<MethodId> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut m = pb.method(class, format!("leaf{i}"), 1, true);
        let alt = m.label();
        let done = m.label();
        // Structurally distinct bodies (like real Java methods): the
        // opcode *sequences* differ, not just operands — otherwise
        // control-flow projection onto the ICFG would be artificially
        // ambiguous in a way real code is not.
        for _ in 0..(i % 3) {
            m.emit(I::Iload(0));
            m.emit(I::Iconst(1 + rng.below(7) as i64));
            match i % 4 {
                0 => m.emit(I::Ixor),
                1 => m.emit(I::Iand),
                2 => m.emit(I::Ishl),
                _ => m.emit(I::Ior),
            };
            m.emit(I::Istore(0));
        }
        m.emit(I::Iload(0));
        m.emit(I::Iconst(1 + rng.below(5) as i64));
        m.emit(I::Irem);
        m.branch_if(CmpKind::Eq, alt);
        m.emit(I::Iload(0));
        m.emit(I::Iconst(3));
        match i % 3 {
            0 => m.emit(I::Imul),
            1 => m.emit(I::Iadd),
            _ => m.emit(I::Isub),
        };
        m.jump(done);
        m.bind(alt);
        m.emit(I::Iload(0));
        m.emit(I::Iconst(1));
        match i % 2 {
            0 => m.emit(I::Iadd),
            _ => m.emit(I::Ishr),
        };
        m.bind(done);
        m.emit(I::Ireturn);
        out.push(m.finish());
    }
    out
}

/// Adds a class hierarchy of `n_classes` subclasses of a fresh base, each
/// overriding a `visit(x)` virtual method with a distinct body. Returns
/// `(base class, vtable slot, subclass ids)`.
pub fn add_visitor_hierarchy(
    pb: &mut ProgramBuilder,
    n_classes: usize,
    rng: &mut Lcg,
) -> (ClassId, u16, Vec<ClassId>) {
    let base = pb.add_class("Node", None, 1);
    let mut mb = pb.method(base, "visit", 2, true);
    mb.emit(I::Iload(1));
    mb.emit(I::Iconst(1));
    mb.emit(I::Iadd);
    mb.emit(I::Ireturn);
    let base_visit = mb.finish();
    let slot = pb.add_virtual(base, base_visit);

    let mut subclasses = Vec::with_capacity(n_classes);
    for i in 0..n_classes {
        let sub = pb.add_class(format!("Node{i}"), Some(base), 1);
        let mut mb = pb.method(sub, "visit", 2, true);
        let alt = mb.label();
        let done = mb.label();
        // Distinct opcode shapes per override (see add_leaf_methods).
        for _ in 0..(i % 4) {
            mb.emit(I::Iload(1));
            mb.emit(I::Iconst(1 + rng.below(9) as i64));
            match i % 3 {
                0 => mb.emit(I::Ixor),
                1 => mb.emit(I::Ishl),
                _ => mb.emit(I::Iand),
            };
            mb.emit(I::Istore(1));
        }
        mb.emit(I::Iload(1));
        mb.emit(I::Iconst(2 + rng.below(5) as i64));
        mb.emit(I::Irem);
        mb.branch_if(CmpKind::Ne, alt);
        mb.emit(I::Iload(1));
        mb.emit(I::Iconst(i as i64 + 1));
        match i % 3 {
            0 => mb.emit(I::Iadd),
            1 => mb.emit(I::Isub),
            _ => mb.emit(I::Ior),
        };
        mb.jump(done);
        mb.bind(alt);
        mb.emit(I::Iload(1));
        mb.emit(I::Iconst(i as i64 + 2));
        match i % 2 {
            0 => mb.emit(I::Imul),
            _ => mb.emit(I::Iadd),
        };
        mb.bind(done);
        mb.emit(I::Ireturn);
        let visit = mb.finish();
        pb.override_virtual(sub, slot, visit);
        subclasses.push(sub);
    }
    (base, slot, subclasses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::Program;
    use jportal_jvm::runtime::{Jvm, JvmConfig};

    #[test]
    fn lcg_is_deterministic_and_varied() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        let va: Vec<u64> = (0..8).map(|_| a.below(100)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.below(100)).collect();
        assert_eq!(va, vb);
        assert!(va.windows(2).any(|w| w[0] != w[1]));
    }

    fn run(p: &Program) {
        let r = Jvm::new(JvmConfig {
            tracing: false,
            ..JvmConfig::default()
        })
        .run(p);
        assert!(r.thread_errors.is_empty(), "{:?}", r.thread_errors);
    }

    #[test]
    fn generated_pieces_verify_and_run() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut rng = Lcg::new(3);
        let leaves = add_leaf_methods(&mut pb, c, 4, &mut rng);
        let mut m = pb.method(c, "main", 0, false);
        m.reserve_locals(2);
        emit_counted_loop(&mut m, 1, 5, |m| {
            for &l in &leaves {
                m.emit(I::Iload(1));
                m.emit(I::InvokeStatic(l));
                m.emit(I::Pop);
            }
        });
        emit_arith_chain(&mut m, 3, &mut rng);
        m.emit(I::Return);
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        run(&p);
    }

    #[test]
    fn visitor_hierarchy_dispatches() {
        let mut pb = ProgramBuilder::new();
        let mut rng = Lcg::new(5);
        let (base, slot, subs) = add_visitor_hierarchy(&mut pb, 3, &mut rng);
        let holder = pb.add_class("Main", None, 0);
        let mut m = pb.method(holder, "main", 0, false);
        for &sub in &subs {
            m.emit(I::New(sub));
            m.emit(I::Iconst(10));
            m.emit(I::InvokeVirtual {
                declared_in: base,
                slot,
            });
            m.emit(I::Pop);
        }
        m.emit(I::Return);
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        run(&p);
    }
}
