//! Deterministic DaCapo-analog workloads for the JPortal evaluation.
//!
//! The paper evaluates on nine DaCapo-9.12 programs (Table 1). Running
//! real Java is out of reach for this reproduction, so each benchmark has
//! a synthetic analog engineered to reproduce its counterpart's
//! *qualitative* control-flow character — the property the evaluation's
//! shape depends on:
//!
//! | analog    | character                                            |
//! |-----------|------------------------------------------------------|
//! | avrora    | instruction-dispatch interpreter loop (switch-dense) |
//! | batik     | virtual-dispatch tree rendering                      |
//! | fop       | recursive layout over a document tree                |
//! | h2        | hash-join over array tables, **multi-threaded**      |
//! | jython    | deep chains of tiny methods (call-dense)             |
//! | luindex   | tokenising + index insertion loops                   |
//! | lusearch  | query loops, **multi-threaded**                      |
//! | pmd       | AST visitor with class hierarchy, **multi-threaded** |
//! | sunflow   | tight numeric inner loops (highest trace rate)       |
//!
//! All generators are seeded and parameterised by a scale factor so tests
//! run in milliseconds while benches can grow the workloads.

pub mod gen;
pub mod stats;
pub mod suite;

pub use stats::{characteristics, Characteristics};
pub use suite::{all_workloads, workload_by_name, Workload, WORKLOAD_NAMES};
