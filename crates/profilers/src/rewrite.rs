//! Bytecode rewriting: probe insertion with branch-target remapping.
//!
//! Instrumentation passes describe *where* probes go; this module rebuilds
//! the method with all branch targets, switch arms and exception-table
//! entries remapped. Two insertion semantics exist:
//!
//! * **block entry** (`at_entry`): probes run whenever control reaches the
//!   instruction — jumps *into* the point land on the probes;
//! * **fall-through** (`after_fallthrough`): probes run only when control
//!   falls through from the preceding instruction — jumps land past them.
//!   Combined with **branch-edge trampolines** (`on_branch_edge`), this is
//!   exactly what CFG *edge* instrumentation (Ball–Larus) needs.

use std::collections::HashMap;

use jportal_bytecode::{Bci, Instruction, Method};

/// A plan of insertions into one method.
#[derive(Debug, Clone, Default)]
pub struct InsertionPlan {
    /// Probes to run whenever control reaches `bci`.
    at_entry: HashMap<u32, Vec<Instruction>>,
    /// Probes to run only on the fall-through edge `bci → bci + 1`.
    after_fallthrough: HashMap<u32, Vec<Instruction>>,
    /// Probes to run only on the explicit branch edge `from → to`
    /// (installed via a trampoline block).
    on_branch_edge: Vec<(u32, u32, Vec<Instruction>)>,
}

impl InsertionPlan {
    /// Creates an empty plan.
    pub fn new() -> InsertionPlan {
        InsertionPlan::default()
    }

    /// Adds probes at the entry of `bci`.
    pub fn at_entry(&mut self, bci: Bci, probes: impl IntoIterator<Item = Instruction>) {
        self.at_entry.entry(bci.0).or_default().extend(probes);
    }

    /// Adds probes on the fall-through edge out of `bci`.
    pub fn after_fallthrough(&mut self, bci: Bci, probes: impl IntoIterator<Item = Instruction>) {
        self.after_fallthrough
            .entry(bci.0)
            .or_default()
            .extend(probes);
    }

    /// Adds probes on the explicit branch edge `from → to`.
    pub fn on_branch_edge(
        &mut self,
        from: Bci,
        to: Bci,
        probes: impl IntoIterator<Item = Instruction>,
    ) {
        self.on_branch_edge
            .push((from.0, to.0, probes.into_iter().collect()));
    }

    /// `true` if the plan inserts nothing.
    pub fn is_empty(&self) -> bool {
        self.at_entry.is_empty()
            && self.after_fallthrough.is_empty()
            && self.on_branch_edge.is_empty()
    }

    /// Applies the plan to a method, returning the rewritten method and
    /// the old→new bci mapping.
    pub fn apply(&self, method: &Method) -> RewriteResult {
        let old_len = method.code.len() as u32;
        // Pass 1: compute positions.
        // entry_pos[b]: where jumps to b land (start of entry probes);
        // insn_pos[b]: where the original instruction sits.
        let mut entry_pos = vec![0u32; old_len as usize + 1];
        let mut insn_pos = vec![0u32; old_len as usize];
        let mut cursor = 0u32;
        for b in 0..old_len {
            entry_pos[b as usize] = cursor;
            cursor += self.at_entry.get(&b).map_or(0, |v| v.len() as u32);
            insn_pos[b as usize] = cursor;
            cursor += 1;
            cursor += self.after_fallthrough.get(&b).map_or(0, |v| v.len() as u32);
        }
        entry_pos[old_len as usize] = cursor;

        // Trampolines are appended after the rewritten body.
        let mut trampoline_pos: HashMap<usize, u32> = HashMap::new();
        let mut tcursor = cursor;
        for (i, (_, _, probes)) in self.on_branch_edge.iter().enumerate() {
            trampoline_pos.insert(i, tcursor);
            tcursor += probes.len() as u32 + 1; // + goto
        }

        // Branch-edge retargets: (from, to) → trampoline entry.
        let mut edge_target: HashMap<(u32, u32), u32> = HashMap::new();
        for (i, (from, to, _)) in self.on_branch_edge.iter().enumerate() {
            edge_target.insert((*from, *to), trampoline_pos[&i]);
        }

        let remap_target = |from: u32, to: Bci| -> Bci {
            match edge_target.get(&(from, to.0)) {
                Some(&t) => Bci(t),
                None => Bci(entry_pos[to.index()]),
            }
        };

        // Pass 2: emit.
        let mut code: Vec<Instruction> = Vec::with_capacity(tcursor as usize);
        for b in 0..old_len {
            if let Some(probes) = self.at_entry.get(&b) {
                code.extend(probes.iter().cloned());
            }
            let insn = method.code[b as usize].clone();
            code.push(remap_instruction(insn, b, &remap_target));
            if let Some(probes) = self.after_fallthrough.get(&b) {
                code.extend(probes.iter().cloned());
            }
        }
        for (_from, to, probes) in self.on_branch_edge.iter() {
            code.extend(probes.iter().cloned());
            code.push(Instruction::Goto(Bci(entry_pos[*to as usize])));
        }

        let handlers = method
            .handlers
            .iter()
            .map(|h| jportal_bytecode::ExceptionHandler {
                start: Bci(entry_pos[h.start.index()]),
                end: Bci(entry_pos[h.end.index()]),
                handler: Bci(entry_pos[h.handler.index()]),
                catch_class: h.catch_class,
            })
            .collect();

        RewriteResult {
            method: Method {
                name: method.name.clone(),
                class: method.class,
                n_args: method.n_args,
                max_locals: method.max_locals,
                returns_value: method.returns_value,
                code,
                handlers,
            },
            insn_pos: insn_pos.iter().map(|&p| Bci(p)).collect(),
        }
    }
}

fn remap_instruction(
    insn: Instruction,
    from: u32,
    remap: &impl Fn(u32, Bci) -> Bci,
) -> Instruction {
    match insn {
        Instruction::Goto(t) => Instruction::Goto(remap(from, t)),
        Instruction::If(k, t) => Instruction::If(k, remap(from, t)),
        Instruction::IfICmp(k, t) => Instruction::IfICmp(k, remap(from, t)),
        Instruction::IfNull(t) => Instruction::IfNull(remap(from, t)),
        Instruction::TableSwitch {
            low,
            targets,
            default,
        } => Instruction::TableSwitch {
            low,
            targets: targets.into_iter().map(|t| remap(from, t)).collect(),
            default: remap(from, default),
        },
        Instruction::LookupSwitch { pairs, default } => Instruction::LookupSwitch {
            pairs: pairs
                .into_iter()
                .map(|(k, t)| (k, remap(from, t)))
                .collect(),
            default: remap(from, default),
        },
        other => other,
    }
}

/// A rewritten method plus the location map.
#[derive(Debug, Clone)]
pub struct RewriteResult {
    /// The instrumented method.
    pub method: Method,
    /// For each original bci, where that instruction now lives.
    pub insn_pos: Vec<Bci>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{verify_program, CmpKind, Instruction as I, ProbeKind, Program};

    fn probe(id: u32) -> Instruction {
        I::Probe(ProbeKind::Count(id))
    }

    /// if (x) { a } else { b }; return — diamond.
    fn diamond() -> (Program, Method) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let els = m.label();
        let join = m.label();
        m.emit(I::Iconst(1)); // 0
        m.branch_if(CmpKind::Eq, els); // 1
        m.emit(I::Nop); // 2
        m.jump(join); // 3
        m.bind(els);
        m.emit(I::Nop); // 4
        m.bind(join);
        m.emit(I::Return); // 5
        let id = m.finish();
        let p = pb.finish_with_entry(id).unwrap();
        let method = p.method(id).clone();
        (p, method)
    }

    fn reverify(p: &Program, id: jportal_bytecode::MethodId, new_method: Method) {
        let methods: Vec<Method> = p
            .methods()
            .map(|(mid, m)| {
                if mid == id {
                    new_method.clone()
                } else {
                    m.clone()
                }
            })
            .collect();
        let classes = p.classes().map(|(_, c)| c.clone()).collect();
        let rebuilt = Program::from_parts(classes, methods, p.entry());
        verify_program(&rebuilt).expect("instrumented program verifies");
    }

    #[test]
    fn entry_insertion_retargets_jumps_onto_probes() {
        let (p, m) = diamond();
        let mut plan = InsertionPlan::new();
        plan.at_entry(Bci(4), [probe(7)]);
        let r = plan.apply(&m);
        // goto else target (bci 4) must land on the probe.
        match &r.method.code[1] {
            I::If(_, t) => {
                assert_eq!(r.method.code[t.index()], probe(7));
                assert_eq!(r.method.code[t.index() + 1], I::Nop);
            }
            other => panic!("expected branch, got {other:?}"),
        }
        reverify(&p, p.entry(), r.method);
    }

    #[test]
    fn fallthrough_insertion_is_skipped_by_jumps() {
        let (p, m) = diamond();
        let mut plan = InsertionPlan::new();
        // Probe on the fall-through edge 1 → 2 (branch not taken).
        plan.after_fallthrough(Bci(1), [probe(9)]);
        let r = plan.apply(&m);
        // The branch at (new) position of bci 1 falls through to the probe.
        let if_pos = r.insn_pos[1].index();
        assert_eq!(r.method.code[if_pos + 1], probe(9));
        // The taken target (bci 4) does not pass the probe: it maps to
        // nop directly.
        match &r.method.code[if_pos] {
            I::If(_, t) => assert_eq!(r.method.code[t.index()], I::Nop),
            other => panic!("expected branch, got {other:?}"),
        }
        reverify(&p, p.entry(), r.method);
    }

    #[test]
    fn branch_edge_trampolines() {
        let (p, m) = diamond();
        let mut plan = InsertionPlan::new();
        plan.on_branch_edge(Bci(1), Bci(4), [probe(11)]);
        let r = plan.apply(&m);
        match &r.method.code[r.insn_pos[1].index()] {
            I::If(_, t) => {
                // Branch goes to the trampoline: probe then goto old target.
                assert_eq!(r.method.code[t.index()], probe(11));
                match &r.method.code[t.index() + 1] {
                    I::Goto(g) => assert_eq!(r.method.code[g.index()], I::Nop),
                    other => panic!("expected goto, got {other:?}"),
                }
            }
            other => panic!("expected branch, got {other:?}"),
        }
        reverify(&p, p.entry(), r.method);
    }

    #[test]
    fn empty_plan_is_identity_modulo_clone() {
        let (_, m) = diamond();
        let plan = InsertionPlan::new();
        assert!(plan.is_empty());
        let r = plan.apply(&m);
        assert_eq!(r.method.code, m.code);
    }

    #[test]
    fn handlers_are_remapped() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let h = m.label();
        let start = m.here();
        m.emit(I::Iconst(1));
        m.emit(I::Iconst(0));
        m.emit(I::Idiv);
        m.emit(I::Pop);
        let end = m.here();
        m.emit(I::Return);
        m.add_handler(start, end, h, None);
        m.bind(h);
        m.emit(I::Pop);
        m.emit(I::Return);
        let id = m.finish();
        let p = pb.finish_with_entry(id).unwrap();
        let method = p.method(id).clone();

        let mut plan = InsertionPlan::new();
        plan.at_entry(Bci(0), [probe(1)]);
        plan.at_entry(Bci(5), [probe(2)]);
        let r = plan.apply(&method);
        let hdl = &r.method.handlers[0];
        // Handler target must land on its probe.
        assert_eq!(r.method.code[hdl.handler.index()], probe(2));
        // Covered range still spans the idiv.
        let idiv_pos = r.insn_pos[2];
        assert!(hdl.start <= idiv_pos && idiv_pos < hdl.end);
        reverify(&p, id, r.method);
    }

    #[test]
    fn switch_targets_are_remapped() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let a = m.label();
        let b = m.label();
        let d = m.label();
        m.emit(I::Iconst(0));
        m.table_switch(0, &[a, b], d);
        m.bind(a);
        m.emit(I::Return);
        m.bind(b);
        m.emit(I::Return);
        m.bind(d);
        m.emit(I::Return);
        let id = m.finish();
        let p = pb.finish_with_entry(id).unwrap();
        let method = p.method(id).clone();

        let mut plan = InsertionPlan::new();
        plan.at_entry(Bci(2), [probe(1)]);
        plan.on_branch_edge(Bci(1), Bci(3), [probe(2)]);
        let r = plan.apply(&method);
        match &r.method.code[r.insn_pos[1].index()] {
            I::TableSwitch { targets, .. } => {
                assert_eq!(r.method.code[targets[0].index()], probe(1));
                assert_eq!(r.method.code[targets[1].index()], probe(2));
            }
            other => panic!("expected switch, got {other:?}"),
        }
        reverify(&p, id, r.method);
    }
}
