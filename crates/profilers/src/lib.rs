//! Baseline profilers the paper compares JPortal against (§7).
//!
//! Instrumentation-based (reimplementations of Ball–Larus, as the paper
//! did with ASM):
//!
//! * [`coverage`] — statement-coverage profiling (Table 2 "SC",
//!   Ball & Larus 1994),
//! * [`ball_larus`] — efficient path profiling (Table 2 "PF",
//!   Ball & Larus 1996), with the real edge-numbering algorithm,
//! * [`cftrace`] — full control-flow tracing (Table 2 "CF"),
//! * [`hotmethod`] — hot-method instrumentation (Table 2 "HM") and the
//!   sampling profilers (xprof / JProfiler analogs, Tables 2 and 4).
//!
//! All instrumentation passes are bytecode→bytecode rewrites built on
//! [`rewrite`], which handles branch-target remapping and edge splitting;
//! the instrumented programs run on the same simulated JVM, and the probe
//! costs on the simulated clock produce the baselines' overheads.

pub mod ball_larus;
pub mod cftrace;
pub mod coverage;
pub mod hotmethod;
pub mod rewrite;

pub use ball_larus::{instrument_path_profiling, PathNumbering};
pub use cftrace::instrument_control_flow;
pub use coverage::instrument_statement_coverage;
pub use hotmethod::{instrument_hot_methods, SamplingProfiler};
pub use rewrite::{InsertionPlan, RewriteResult};
