//! Ball–Larus efficient path profiling (MICRO '96) — the paper's "PF"
//! baseline.
//!
//! The real algorithm: remove back edges to get the acyclic reduction
//! (with surrogate ENTRY→header and latch→EXIT edges), number paths so
//! that the sums of edge values along distinct acyclic paths are distinct
//! and compact, and instrument edges whose value is non-zero with path-
//! register increments; path counts are committed at exits and back
//! edges. The numbering also decodes: a path value maps back to the exact
//! block sequence ([`PathNumbering::path_blocks`]).

use std::collections::HashMap;

use jportal_bytecode::{Bci, Instruction, MethodId, ProbeKind, Program};
use jportal_cfg::block::{BlockEdge, BlockId, Cfg};

use crate::rewrite::InsertionPlan;

/// The Ball–Larus numbering of one method's acyclic CFG reduction.
#[derive(Debug, Clone)]
pub struct PathNumbering {
    /// The numbered method.
    pub method: MethodId,
    /// Total number of acyclic paths from entry (including surrogate
    /// paths induced by back edges).
    pub num_paths: u64,
    /// Value of each DAG edge `(from, to)`.
    edge_vals: HashMap<(BlockId, BlockId), u64>,
    /// Back edges `(latch, header)`.
    back_edges: Vec<(BlockId, BlockId)>,
    /// Surrogate ENTRY→header value per back-edge header (the reset value
    /// after a back edge commits).
    header_entry_val: HashMap<BlockId, u64>,
    /// Surrogate latch→EXIT value per latch (added before a back-edge
    /// commit).
    latch_exit_val: HashMap<BlockId, u64>,
    /// numpaths per block (exposed for diagnostics and tests).
    pub num_from: HashMap<BlockId, u64>,
}

impl PathNumbering {
    /// Computes the numbering for one method.
    pub fn compute(method_id: MethodId, cfg: &Cfg) -> PathNumbering {
        // DFS from entry over non-exception edges, collecting retreating
        // (back) edges and a post-order; removing the retreating edges
        // leaves a DAG.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let n = cfg.block_count();
        let mut color = vec![Color::White; n];
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new();
        let mut dag_succs: HashMap<BlockId, Vec<BlockId>> = HashMap::new();

        let mut stack: Vec<(BlockId, usize)> = vec![(cfg.entry(), 0)];
        color[cfg.entry().index()] = Color::Grey;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs: Vec<BlockId> = cfg
                .block(b)
                .succs
                .iter()
                .filter(|&&(_, k)| k != BlockEdge::Exception)
                .map(|&(s, _)| s)
                .collect();
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                match color[s.index()] {
                    Color::White => {
                        dag_succs.entry(b).or_default().push(s);
                        color[s.index()] = Color::Grey;
                        stack.push((s, 0));
                    }
                    Color::Grey => back_edges.push((b, s)),
                    Color::Black => dag_succs.entry(b).or_default().push(s),
                }
            } else {
                color[b.index()] = Color::Black;
                post.push(b);
                stack.pop();
            }
        }

        // numpaths in post-order (children before parents). Blocks whose
        // only continuations are back edges count as exits.
        let mut num_from: HashMap<BlockId, u64> = HashMap::new();
        let mut edge_vals: HashMap<(BlockId, BlockId), u64> = HashMap::new();
        let mut latch_exit_val: HashMap<BlockId, u64> = HashMap::new();
        for &b in &post {
            let succs = dag_succs.get(&b).cloned().unwrap_or_default();
            let is_latch = back_edges.iter().any(|&(l, _)| l == b);
            let mut total = 0u64;
            for s in &succs {
                edge_vals.insert((b, *s), total);
                total += num_from.get(s).copied().unwrap_or(1);
            }
            if succs.is_empty() || is_latch {
                // Terminating here is one more path (surrogate b→EXIT).
                latch_exit_val.insert(b, total);
                total += 1;
            }
            num_from.insert(b, total.max(1));
        }

        // Surrogate ENTRY→header values: one distinct range per header,
        // appended after the normal paths.
        let mut num_paths = num_from.get(&cfg.entry()).copied().unwrap_or(1);
        let mut header_entry_val: HashMap<BlockId, u64> = HashMap::new();
        let mut headers: Vec<BlockId> = back_edges.iter().map(|&(_, h)| h).collect();
        headers.sort();
        headers.dedup();
        for h in headers {
            header_entry_val.insert(h, num_paths);
            num_paths += num_from.get(&h).copied().unwrap_or(1);
        }

        PathNumbering {
            method: method_id,
            num_paths,
            edge_vals,
            back_edges,
            header_entry_val,
            latch_exit_val,
            num_from,
        }
    }

    /// Value of the DAG edge `(from, to)` (0 when not numbered).
    pub fn edge_value(&self, from: BlockId, to: BlockId) -> u64 {
        self.edge_vals.get(&(from, to)).copied().unwrap_or(0)
    }

    /// The back edges of the method.
    pub fn back_edges(&self) -> &[(BlockId, BlockId)] {
        &self.back_edges
    }

    /// Decodes a committed path value back to its block sequence,
    /// starting at `entry` (or at a loop header for surrogate paths).
    pub fn path_blocks(&self, cfg: &Cfg, mut value: u64) -> Vec<BlockId> {
        // Determine the starting block: surrogate ranges start at their
        // header's entry value.
        let mut start = cfg.entry();
        let mut best = 0u64;
        for (&h, &v) in &self.header_entry_val {
            if v <= value && v >= best && v > 0 {
                best = v;
                start = h;
            }
        }
        if best > 0 {
            value -= best;
        }
        let mut out = vec![start];
        let mut cur = start;
        loop {
            // Choose the successor with the largest edge value ≤ value.
            let mut next: Option<(BlockId, u64)> = None;
            for (&(f, t), &v) in &self.edge_vals {
                if f == cur && v <= value {
                    match next {
                        Some((_, bv)) if bv >= v => {}
                        _ => next = Some((t, v)),
                    }
                }
            }
            match next {
                Some((t, v)) => {
                    // Terminating at a latch is encoded past all its
                    // outgoing edges.
                    if let Some(&exit_v) = self.latch_exit_val.get(&cur) {
                        if exit_v <= value && exit_v > v {
                            break;
                        }
                    }
                    value -= v;
                    out.push(t);
                    cur = t;
                }
                None => break,
            }
        }
        out
    }
}

/// Instruments every method of `program` with Ball–Larus path profiling.
///
/// Returns the instrumented program plus the per-method numberings
/// (region id = method id; path counts land in the probe runtime keyed by
/// `(method id, path value)`).
pub fn instrument_path_profiling(program: &Program) -> (Program, Vec<PathNumbering>) {
    let mut numberings = Vec::new();
    let mut methods = Vec::new();
    for (mid, method) in program.methods() {
        let cfg = Cfg::build(method);
        let numbering = PathNumbering::compute(mid, &cfg);
        let region = mid.0;
        let mut plan = InsertionPlan::new();

        // Edge increments.
        for (&(from, to), &val) in &numbering.edge_vals {
            if val == 0 {
                continue;
            }
            let from_block = cfg.block(from);
            let last = from_block.last();
            let probes = [Instruction::Probe(ProbeKind::PathAdd(val as u32))];
            if is_fallthrough_edge(&cfg, from, to) {
                plan.after_fallthrough(last, probes);
            } else {
                plan.on_branch_edge(last, cfg.block(to).start, probes);
            }
        }

        // Exits: commit before every return / throw.
        for (i, insn) in method.code.iter().enumerate() {
            if insn.is_return() || matches!(insn, Instruction::Athrow) {
                plan.at_entry(
                    Bci(i as u32),
                    [Instruction::Probe(ProbeKind::PathCommit(region))],
                );
            }
        }

        // Back edges: add latch→EXIT value, commit, reset to the
        // header's surrogate entry value.
        for &(latch, header) in &numbering.back_edges {
            let last = cfg.block(latch).last();
            let exit_val = numbering.latch_exit_val.get(&latch).copied().unwrap_or(0);
            let reset = numbering
                .header_entry_val
                .get(&header)
                .copied()
                .unwrap_or(0);
            let probes = vec![
                Instruction::Probe(ProbeKind::PathAdd(exit_val as u32)),
                Instruction::Probe(ProbeKind::PathCommit(region)),
                Instruction::Probe(ProbeKind::PathSet(reset as u32)),
            ];
            if is_fallthrough_edge(&cfg, latch, header) {
                plan.after_fallthrough(last, probes);
            } else {
                plan.on_branch_edge(last, cfg.block(header).start, probes);
            }
        }

        let rewritten = plan.apply(method);
        methods.push(rewritten.method);
        numberings.push(numbering);
    }
    let classes = program.classes().map(|(_, c)| c.clone()).collect();
    let instrumented = Program::from_parts(classes, methods, program.entry());
    jportal_bytecode::verify_program(&instrumented).expect("instrumented program verifies");
    (instrumented, numberings)
}

fn is_fallthrough_edge(cfg: &Cfg, from: BlockId, to: BlockId) -> bool {
    cfg.block(from)
        .succs
        .iter()
        .any(|&(s, k)| s == to && k == BlockEdge::FallThrough)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I};
    use jportal_jvm::runtime::{Jvm, JvmConfig};

    /// Diamond: two acyclic paths.
    fn diamond_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let els = m.label();
        let join = m.label();
        m.emit(I::Iconst(1));
        m.branch_if(CmpKind::Eq, els);
        m.emit(I::Nop);
        m.jump(join);
        m.bind(els);
        m.emit(I::Nop);
        m.bind(join);
        m.emit(I::Return);
        let id = m.finish();
        pb.finish_with_entry(id).unwrap()
    }

    #[test]
    fn diamond_has_two_paths() {
        let p = diamond_program();
        let cfg = Cfg::build(p.method(p.entry()));
        let n = PathNumbering::compute(p.entry(), &cfg);
        assert_eq!(n.num_paths, 2);
        assert!(n.back_edges().is_empty());
    }

    #[test]
    fn diamond_paths_decode_to_distinct_blocks() {
        let p = diamond_program();
        let cfg = Cfg::build(p.method(p.entry()));
        let n = PathNumbering::compute(p.entry(), &cfg);
        let p0 = n.path_blocks(&cfg, 0);
        let p1 = n.path_blocks(&cfg, 1);
        assert_ne!(p0, p1);
        assert_eq!(p0[0], cfg.entry());
        assert_eq!(p1[0], cfg.entry());
        assert_eq!(p0.len(), 3);
        assert_eq!(p1.len(), 3);
    }

    #[test]
    fn executed_path_is_counted_once() {
        let p = diamond_program();
        let (instrumented, numberings) = instrument_path_profiling(&p);
        let r = Jvm::new(JvmConfig {
            tracing: false,
            ..JvmConfig::default()
        })
        .run(&instrumented);
        assert!(r.thread_errors.is_empty());
        // iconst 1 → ifeq not taken → then-branch path. Exactly one path
        // committed, with count 1.
        let region = p.entry().0;
        let total: u64 = r
            .probes
            .paths()
            .iter()
            .filter(|(&(reg, _), _)| reg == region)
            .map(|(_, &c)| c)
            .sum();
        assert_eq!(total, 1, "exactly one path execution");
        let _ = numberings;
    }

    /// Loop: for (i = n; i > 0; i--) body — classic BL example.
    fn loop_program(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let head = m.label();
        let done = m.label();
        m.emit(I::Iconst(n));
        m.emit(I::Istore(0));
        m.bind(head);
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Le, done);
        m.emit(I::Iinc(0, -1));
        m.jump(head);
        m.bind(done);
        m.emit(I::Return);
        let id = m.finish();
        pb.finish_with_entry(id).unwrap()
    }

    #[test]
    fn loop_iterations_commit_per_backedge() {
        let n = 7;
        let p = loop_program(n);
        let (instrumented, _) = instrument_path_profiling(&p);
        let r = Jvm::new(JvmConfig {
            tracing: false,
            ..JvmConfig::default()
        })
        .run(&instrumented);
        assert!(r.thread_errors.is_empty());
        let region = p.entry().0;
        let total: u64 = r
            .probes
            .paths()
            .iter()
            .filter(|(&(reg, _), _)| reg == region)
            .map(|(_, &c)| c)
            .sum();
        // n back-edge commits plus one exit commit.
        assert_eq!(total, n as u64 + 1);
        // The dominant path (loop body iteration) has count n - 1 or n:
        // the hottest path count must be ≥ n - 1.
        let max = r
            .probes
            .paths()
            .iter()
            .filter(|(&(reg, _), _)| reg == region)
            .map(|(_, &c)| c)
            .max()
            .unwrap();
        assert!(max >= n as u64 - 1, "hot loop path dominates, got {max}");
    }

    #[test]
    fn distinct_executions_hit_distinct_path_values() {
        // if (x) a else b with both sides exercised via two threads /
        // two runs — here: run a program that takes both sides in
        // sequence.
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut f = pb.method(c, "f", 1, false);
        let els = f.label();
        let join = f.label();
        f.emit(I::Iload(0));
        f.branch_if(CmpKind::Eq, els);
        f.emit(I::Nop);
        f.jump(join);
        f.bind(els);
        f.emit(I::Nop);
        f.bind(join);
        f.emit(I::Return);
        let fid = f.finish();
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::Iconst(0));
        m.emit(I::InvokeStatic(fid));
        m.emit(I::Iconst(1));
        m.emit(I::InvokeStatic(fid));
        m.emit(I::Return);
        let id = m.finish();
        let p = pb.finish_with_entry(id).unwrap();

        let (instrumented, _) = instrument_path_profiling(&p);
        let r = Jvm::new(JvmConfig {
            tracing: false,
            ..JvmConfig::default()
        })
        .run(&instrumented);
        assert!(r.thread_errors.is_empty());
        let region = fid.0;
        let distinct = r
            .probes
            .paths()
            .keys()
            .filter(|&&(reg, _)| reg == region)
            .count();
        assert_eq!(distinct, 2, "both diamond paths observed");
    }

    #[test]
    fn numbering_assigns_distinct_values_to_distinct_paths() {
        let p = diamond_program();
        let cfg = Cfg::build(p.method(p.entry()));
        let n = PathNumbering::compute(p.entry(), &cfg);
        // All path values below num_paths decode to distinct sequences.
        let mut seen = std::collections::HashSet::new();
        for v in 0..n.num_paths {
            let blocks = n.path_blocks(&cfg, v);
            assert!(seen.insert(blocks), "path value {v} duplicates another");
        }
    }
}
