//! Full control-flow tracing instrumentation (the paper's "CF" baseline).
//!
//! Records the complete block-level execution trace by appending an event
//! record at every basic-block entry. This is the technique whose trace
//! the paper uses as ground truth — and whose overhead reaches 3555× on
//! branch-dense code (Table 2), because every block pays an event-buffer
//! write amortizing file I/O.

use std::collections::HashMap;

use jportal_bytecode::{Instruction, MethodId, ProbeKind, Program};
use jportal_cfg::block::Cfg;

use crate::rewrite::InsertionPlan;

/// Size of one trace record on disk: block id + timestamp.
pub const EVENT_BYTES: u32 = 12;

/// Map from event id to `(method, block start bci)`.
#[derive(Debug, Clone, Default)]
pub struct CfTraceMap {
    /// Event id → (method, block start bci).
    pub blocks: HashMap<u32, (MethodId, u32)>,
}

/// Instruments every basic block with a control-flow trace event.
///
/// The probe runtime accumulates the number of events and total bytes —
/// the paper's Table 5 "trace size" for the baseline — while the cost
/// model charges per-byte write costs that produce the Table 2 slowdowns.
pub fn instrument_control_flow(program: &Program) -> (Program, CfTraceMap) {
    let mut map = CfTraceMap::default();
    let mut methods = Vec::new();
    let mut next_id = 0u32;
    for (mid, method) in program.methods() {
        let cfg = Cfg::build(method);
        let mut plan = InsertionPlan::new();
        for (_bid, block) in cfg.blocks() {
            let id = next_id;
            next_id += 1;
            map.blocks.insert(id, (mid, block.start.0));
            plan.at_entry(
                block.start,
                [Instruction::Probe(ProbeKind::Event(EVENT_BYTES))],
            );
        }
        methods.push(plan.apply(method).method);
    }
    let classes = program.classes().map(|(_, c)| c.clone()).collect();
    let instrumented = Program::from_parts(classes, methods, program.entry());
    jportal_bytecode::verify_program(&instrumented).expect("instrumented program verifies");
    (instrumented, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I};
    use jportal_jvm::runtime::{Jvm, JvmConfig};

    fn loopy(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let head = m.label();
        let done = m.label();
        m.emit(I::Iconst(n));
        m.emit(I::Istore(0));
        m.bind(head);
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Le, done);
        m.emit(I::Iinc(0, -1));
        m.jump(head);
        m.bind(done);
        m.emit(I::Return);
        let id = m.finish();
        pb.finish_with_entry(id).unwrap()
    }

    #[test]
    fn event_volume_matches_block_executions() {
        let p = loopy(10);
        let (instrumented, _map) = instrument_control_flow(&p);
        let r = Jvm::new(JvmConfig {
            tracing: false,
            ..JvmConfig::default()
        })
        .run(&instrumented);
        assert!(r.thread_errors.is_empty());
        let (events, bytes) = r.probes.event_volume();
        // Blocks: entry once, header 11×, body 10×, exit once = 23.
        assert_eq!(events, 23);
        assert_eq!(bytes, 23 * u64::from(EVENT_BYTES));
    }

    #[test]
    fn cf_tracing_is_much_slower_than_coverage() {
        let p = loopy(400);
        let base = Jvm::new(JvmConfig {
            tracing: false,
            record_truth_trace: false,
            ..JvmConfig::default()
        })
        .run(&p)
        .wall_cycles;
        let (cf, _) = instrument_control_flow(&p);
        let cf_t = Jvm::new(JvmConfig {
            tracing: false,
            record_truth_trace: false,
            ..JvmConfig::default()
        })
        .run(&cf)
        .wall_cycles;
        let (sc, _) = crate::coverage::instrument_statement_coverage(&p);
        let sc_t = Jvm::new(JvmConfig {
            tracing: false,
            record_truth_trace: false,
            ..JvmConfig::default()
        })
        .run(&sc)
        .wall_cycles;
        assert!(cf_t > sc_t, "CF must cost more than SC");
        assert!(cf_t > base, "CF must cost more than the baseline");
    }
}
