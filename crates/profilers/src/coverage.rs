//! Statement-coverage instrumentation (the paper's "SC" baseline,
//! Ball & Larus 1994).
//!
//! A counter probe at every basic-block entry; per-statement counts
//! follow because every instruction of a block executes exactly as often
//! as the block. Counter ids are globally unique: a dense numbering of
//! `(method, block)` pairs, returned so clients can map counts back.

use std::collections::HashMap;

use jportal_bytecode::{Instruction, MethodId, ProbeKind, Program};
use jportal_cfg::block::Cfg;

use crate::rewrite::InsertionPlan;

/// Map from counter id back to `(method, block)` and each block's bci
/// range.
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    /// Counter id → (method, block start bci, block end bci).
    pub blocks: HashMap<u32, (MethodId, u32, u32)>,
}

impl CoverageMap {
    /// Derives per-statement counts from probe counters: each covered
    /// block contributes its count to every bci in its range.
    pub fn statement_counts(&self, counters: &HashMap<u32, u64>) -> HashMap<(MethodId, u32), u64> {
        let mut out = HashMap::new();
        for (id, &count) in counters {
            if let Some(&(m, start, end)) = self.blocks.get(id) {
                for bci in start..end {
                    *out.entry((m, bci)).or_insert(0) += count;
                }
            }
        }
        out
    }
}

/// Instruments every basic block of every method with a coverage counter.
pub fn instrument_statement_coverage(program: &Program) -> (Program, CoverageMap) {
    let mut map = CoverageMap::default();
    let mut next_id = 0u32;
    let mut methods = Vec::new();
    for (mid, method) in program.methods() {
        let cfg = Cfg::build(method);
        let mut plan = InsertionPlan::new();
        for (_bid, block) in cfg.blocks() {
            let id = next_id;
            next_id += 1;
            map.blocks.insert(id, (mid, block.start.0, block.end.0));
            plan.at_entry(block.start, [Instruction::Probe(ProbeKind::Count(id))]);
        }
        methods.push(plan.apply(method).method);
    }
    let classes = program.classes().map(|(_, c)| c.clone()).collect();
    let instrumented = Program::from_parts(classes, methods, program.entry());
    jportal_bytecode::verify_program(&instrumented).expect("instrumented program verifies");
    (instrumented, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{Bci, CmpKind, Instruction as I};
    use jportal_jvm::runtime::{Jvm, JvmConfig};

    fn branchy() -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let els = m.label();
        let join = m.label();
        m.emit(I::Iconst(1));
        m.branch_if(CmpKind::Eq, els); // not taken (1 != 0)
        m.emit(I::Nop);
        m.jump(join);
        m.bind(els);
        m.emit(I::Nop);
        m.bind(join);
        m.emit(I::Return);
        let id = m.finish();
        pb.finish_with_entry(id).unwrap()
    }

    #[test]
    fn covered_blocks_count_and_uncovered_stay_zero() {
        let p = branchy();
        let (instrumented, map) = instrument_statement_coverage(&p);
        let r = Jvm::new(JvmConfig {
            tracing: false,
            ..JvmConfig::default()
        })
        .run(&instrumented);
        assert!(r.thread_errors.is_empty());
        let stmt = map.statement_counts(r.probes.counters());
        let m = p.entry();
        // Entry block and then-branch and join executed once.
        assert_eq!(stmt.get(&(m, 0)).copied().unwrap_or(0), 1);
        assert_eq!(stmt.get(&(m, 2)).copied().unwrap_or(0), 1);
        assert_eq!(stmt.get(&(m, 5)).copied().unwrap_or(0), 1);
        // Else branch (bci 4) never runs.
        assert_eq!(stmt.get(&(m, 4)).copied().unwrap_or(0), 0);
    }

    #[test]
    fn loop_counts_scale_with_iterations() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let head = m.label();
        let done = m.label();
        m.emit(I::Iconst(5));
        m.emit(I::Istore(0));
        m.bind(head);
        m.emit(I::Iload(0)); // bci 2: loop header
        m.branch_if(CmpKind::Le, done);
        m.emit(I::Iinc(0, -1)); // bci 4: body
        m.jump(head);
        m.bind(done);
        m.emit(I::Return);
        let id = m.finish();
        let p = pb.finish_with_entry(id).unwrap();
        let (instrumented, map) = instrument_statement_coverage(&p);
        let r = Jvm::new(JvmConfig {
            tracing: false,
            ..JvmConfig::default()
        })
        .run(&instrumented);
        let stmt = map.statement_counts(r.probes.counters());
        assert_eq!(stmt.get(&(id, 2)).copied().unwrap(), 6, "header runs n+1");
        assert_eq!(stmt.get(&(id, 4)).copied().unwrap(), 5, "body runs n");
        let _ = Bci(0);
    }
}
