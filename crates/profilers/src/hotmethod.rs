//! Hot-method profiling baselines: instrumentation ("HM") and sampling
//! (xprof / JProfiler analogs).
//!
//! The instrumentation variant places a timer probe and an invocation
//! counter at every method entry (expensive: timestamp reads on every
//! call — Table 2's HM column reaches 50× on call-heavy code). The
//! sampling profilers interrupt periodically and record the running
//! method; their overhead is the per-sample cost, and their accuracy is
//! what Table 4 compares against JPortal's trace-derived ranking.

use std::collections::HashMap;

use jportal_bytecode::{Bci, Instruction, MethodId, ProbeKind, Program};
use jportal_jvm::runtime::{Jvm, JvmConfig, SamplerConfig, ThreadSpec};

use crate::rewrite::InsertionPlan;

/// Instruments every method entry with a timer + invocation counter.
///
/// Timer tags and counter ids are both the method id, so results read
/// back directly from the probe runtime.
pub fn instrument_hot_methods(program: &Program) -> Program {
    let mut methods = Vec::new();
    for (mid, method) in program.methods() {
        let mut plan = InsertionPlan::new();
        plan.at_entry(
            Bci(0),
            [
                Instruction::Probe(ProbeKind::MethodTimer(mid.0)),
                Instruction::Probe(ProbeKind::Count(mid.0)),
            ],
        );
        methods.push(plan.apply(method).method);
    }
    let classes = program.classes().map(|(_, c)| c.clone()).collect();
    let instrumented = Program::from_parts(classes, methods, program.entry());
    jportal_bytecode::verify_program(&instrumented).expect("instrumented program verifies");
    instrumented
}

/// Ranks methods by instrumented invocation counts (the HM report).
pub fn hottest_instrumented(counters: &HashMap<u32, u64>, n: usize) -> Vec<MethodId> {
    let mut v: Vec<(MethodId, u64)> = counters.iter().map(|(&id, &c)| (MethodId(id), c)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(n);
    v.into_iter().map(|(m, _)| m).collect()
}

/// A timer-sampling profiler configuration.
///
/// # Examples
///
/// ```
/// use jportal_profilers::SamplingProfiler;
///
/// let xp = SamplingProfiler::xprof();
/// let jp = SamplingProfiler::jprofiler();
/// assert!(jp.sample_cost > xp.sample_cost);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingProfiler {
    /// Cycles between samples (the paper uses 10 ms wall time).
    pub period: u64,
    /// Cycles charged per sample.
    pub sample_cost: u64,
}

impl SamplingProfiler {
    /// HotSpot's built-in `-Xprof` flat profiler: cheap ticks.
    pub fn xprof() -> SamplingProfiler {
        SamplingProfiler {
            period: 60_000,
            sample_cost: 5_000,
        }
    }

    /// JProfiler analog: heavier per-sample work (full stack capture,
    /// agent bookkeeping) — visibly higher overhead (Table 2).
    pub fn jprofiler() -> SamplingProfiler {
        SamplingProfiler {
            period: 60_000,
            sample_cost: 18_000,
        }
    }

    /// Runs `program`'s threads under sampling and returns the run result
    /// (overhead in `wall_cycles`, ranking via `hottest_sampled`).
    pub fn run(
        &self,
        program: &Program,
        threads: &[ThreadSpec],
        mut base: JvmConfig,
    ) -> jportal_jvm::RunResult {
        base.tracing = false;
        base.sampler = Some(SamplerConfig {
            period: self.period,
            cost: self.sample_cost,
        });
        Jvm::new(base).run_threads(program, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I};

    /// main calls cheap() often and expensive() rarely, but expensive()
    /// burns far more cycles.
    fn skewed() -> (Program, MethodId, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut cheap = pb.method(c, "cheap", 0, true);
        cheap.emit(I::Iconst(1));
        cheap.emit(I::Ireturn);
        let cheap = cheap.finish();
        let mut exp = pb.method(c, "expensive", 0, true);
        let head = exp.label();
        let done = exp.label();
        exp.emit(I::Iconst(300));
        exp.emit(I::Istore(0));
        exp.bind(head);
        exp.emit(I::Iload(0));
        exp.branch_if(CmpKind::Le, done);
        exp.emit(I::Iinc(0, -1));
        exp.jump(head);
        exp.bind(done);
        exp.emit(I::Iconst(2));
        exp.emit(I::Ireturn);
        let exp = exp.finish();
        let mut m = pb.method(c, "main", 0, false);
        let head = m.label();
        let done = m.label();
        m.emit(I::Iconst(40));
        m.emit(I::Istore(0));
        m.bind(head);
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Le, done);
        m.emit(I::InvokeStatic(cheap));
        m.emit(I::Pop);
        m.emit(I::InvokeStatic(exp));
        m.emit(I::Pop);
        m.emit(I::Iinc(0, -1));
        m.jump(head);
        m.bind(done);
        m.emit(I::Return);
        let main = m.finish();
        (pb.finish_with_entry(main).unwrap(), cheap, exp)
    }

    #[test]
    fn instrumented_counts_are_exact() {
        let (p, cheap, exp) = skewed();
        let instrumented = instrument_hot_methods(&p);
        let r = Jvm::new(JvmConfig {
            tracing: false,
            ..JvmConfig::default()
        })
        .run(&instrumented);
        assert!(r.thread_errors.is_empty());
        assert_eq!(r.probes.counters().get(&cheap.0), Some(&40));
        assert_eq!(r.probes.counters().get(&exp.0), Some(&40));
        let top = hottest_instrumented(r.probes.counters(), 2);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn sampling_finds_the_cycle_hog() {
        let (p, _cheap, exp) = skewed();
        let prof = SamplingProfiler {
            period: 2_000,
            sample_cost: 0,
        };
        let r = prof.run(
            &p,
            &[ThreadSpec {
                method: p.entry(),
                args: vec![],
            }],
            JvmConfig {
                c1_threshold: u64::MAX,
                c2_threshold: u64::MAX,
                ..JvmConfig::default()
            },
        );
        let top = r.hottest_sampled(1);
        assert_eq!(top, vec![exp], "sampling must find the cycle hog");
    }

    #[test]
    fn jprofiler_overhead_exceeds_xprof() {
        let (p, ..) = skewed();
        let cfg = JvmConfig {
            tracing: false,
            record_truth_trace: false,
            ..JvmConfig::default()
        };
        let spec = [ThreadSpec {
            method: p.entry(),
            args: vec![],
        }];
        let xp = SamplingProfiler {
            period: 3_000,
            ..SamplingProfiler::xprof()
        }
        .run(&p, &spec, cfg.clone());
        let jp = SamplingProfiler {
            period: 3_000,
            ..SamplingProfiler::jprofiler()
        }
        .run(&p, &spec, cfg.clone());
        assert!(jp.wall_cycles > xp.wall_cycles);
    }
}
