//! Runtime support for instrumentation probes.
//!
//! The Ball–Larus baselines (statement coverage, path profiling, full
//! control-flow tracing) and the hot-method instrumentation baseline
//! rewrite bytecode to insert [`jportal_bytecode::ProbeKind`] probes; the
//! executor funnels them here. The runtime records counters, per-frame
//! path registers, event-trace volume and method-timer samples — and the
//! cost model charges each probe to the simulated clock, which is where
//! the baselines' slowdowns (Table 2) come from.

use std::collections::HashMap;

use jportal_bytecode::ProbeKind;

/// Accumulated probe results for one run.
#[derive(Debug, Clone, Default)]
pub struct ProbeRuntime {
    /// Counter table (statement coverage / hot-method entry counts).
    counters: HashMap<u32, u64>,
    /// Ball–Larus path counts: `(region, path value) → count`.
    paths: HashMap<(u32, u64), u64>,
    /// Control-flow event trace volume in bytes.
    event_bytes: u64,
    /// Number of control-flow events.
    event_count: u64,
    /// Method-timer samples: `method-id tag → (count, total cycles)`.
    timers: HashMap<u32, (u64, u64)>,
}

impl ProbeRuntime {
    /// Creates an empty runtime.
    pub fn new() -> ProbeRuntime {
        ProbeRuntime::default()
    }

    /// Executes one probe against the given frame path register.
    /// `now` is the simulated time (used by method timers).
    pub fn fire(&mut self, kind: ProbeKind, path_reg: &mut u64, now: u64) {
        match kind {
            ProbeKind::Count(id) => *self.counters.entry(id).or_insert(0) += 1,
            ProbeKind::PathSet(v) => *path_reg = u64::from(v),
            ProbeKind::PathAdd(v) => *path_reg = path_reg.wrapping_add(u64::from(v)),
            ProbeKind::PathCommit(region) => {
                *self.paths.entry((region, *path_reg)).or_insert(0) += 1;
                *path_reg = 0;
            }
            ProbeKind::Event(bytes) => {
                self.event_bytes += u64::from(bytes);
                self.event_count += 1;
            }
            ProbeKind::MethodTimer(tag) => {
                let e = self.timers.entry(tag).or_insert((0, 0));
                e.0 += 1;
                e.1 = e.1.wrapping_add(now);
            }
        }
    }

    /// A counter's value.
    pub fn counter(&self, id: u32) -> u64 {
        self.counters.get(&id).copied().unwrap_or(0)
    }

    /// All counters.
    pub fn counters(&self) -> &HashMap<u32, u64> {
        &self.counters
    }

    /// Count of a specific Ball–Larus path.
    pub fn path_count(&self, region: u32, path: u64) -> u64 {
        self.paths.get(&(region, path)).copied().unwrap_or(0)
    }

    /// All path counts.
    pub fn paths(&self) -> &HashMap<(u32, u64), u64> {
        &self.paths
    }

    /// Control-flow trace volume `(events, bytes)`.
    pub fn event_volume(&self) -> (u64, u64) {
        (self.event_count, self.event_bytes)
    }

    /// Method-timer samples.
    pub fn timers(&self) -> &HashMap<u32, (u64, u64)> {
        &self.timers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut rt = ProbeRuntime::new();
        let mut reg = 0;
        rt.fire(ProbeKind::Count(3), &mut reg, 0);
        rt.fire(ProbeKind::Count(3), &mut reg, 0);
        rt.fire(ProbeKind::Count(5), &mut reg, 0);
        assert_eq!(rt.counter(3), 2);
        assert_eq!(rt.counter(5), 1);
        assert_eq!(rt.counter(9), 0);
    }

    #[test]
    fn path_register_protocol() {
        let mut rt = ProbeRuntime::new();
        let mut reg = 0;
        rt.fire(ProbeKind::PathAdd(3), &mut reg, 0);
        rt.fire(ProbeKind::PathAdd(4), &mut reg, 0);
        rt.fire(ProbeKind::PathCommit(1), &mut reg, 0);
        assert_eq!(reg, 0, "commit resets the register");
        assert_eq!(rt.path_count(1, 7), 1);
        rt.fire(ProbeKind::PathSet(2), &mut reg, 0);
        rt.fire(ProbeKind::PathCommit(1), &mut reg, 0);
        assert_eq!(rt.path_count(1, 2), 1);
        assert_eq!(rt.path_count(1, 7), 1);
        assert_eq!(rt.path_count(2, 7), 0);
    }

    #[test]
    fn event_volume_tracks_bytes() {
        let mut rt = ProbeRuntime::new();
        let mut reg = 0;
        rt.fire(ProbeKind::Event(8), &mut reg, 0);
        rt.fire(ProbeKind::Event(8), &mut reg, 0);
        assert_eq!(rt.event_volume(), (2, 16));
    }

    #[test]
    fn method_timers() {
        let mut rt = ProbeRuntime::new();
        let mut reg = 0;
        rt.fire(ProbeKind::MethodTimer(7), &mut reg, 100);
        rt.fire(ProbeKind::MethodTimer(7), &mut reg, 250);
        assert_eq!(rt.timers().get(&7), Some(&(2, 350)));
    }
}
