//! The code cache and the exported machine-code metadata.
//!
//! Compiled blobs live in a bounded region; when space runs out the
//! sweeper evicts the least-recently-used blobs and their address ranges
//! are **reused** by later compilations — which is exactly why JPortal
//! must export a method's code and metadata *before* it is reclaimed
//! (§3.2: "JPortal exports (1) the compiled code of a method and (2) its
//! address range to disk before it is reclaimed by GC").
//!
//! The [`MetadataArchive`] is that export: every blob ever installed, with
//! its activity interval, plus the interpreter's template table. Offline
//! lookup is therefore by `(address, timestamp)`.

use std::collections::HashMap;

use jportal_bytecode::MethodId;

use crate::jit::CompiledMethod;
use crate::template::TemplateTable;

/// Base address of the interpreter templates.
pub const TEMPLATE_BASE: u64 = 0x7f80_0000_0000;
/// Base address of the JIT code heap.
pub const JIT_BASE: u64 = 0x7f90_0000_0000;
/// Exclusive upper bound of the whole code-cache address region
/// (the PT instruction-pointer filter covers `[TEMPLATE_BASE, CODE_END)`).
pub const CODE_END: u64 = 0x7fa0_0000_0000;

/// One exported blob with its activity interval.
#[derive(Debug, Clone)]
pub struct ArchivedBlob {
    /// The compiled method (code + debug metadata).
    pub compiled: CompiledMethod,
    /// Install timestamp.
    pub active_from: u64,
    /// Eviction timestamp (`None` while still live at end of run).
    pub active_to: Option<u64>,
}

impl ArchivedBlob {
    /// `true` if the blob was live at `ts` and covers `addr`.
    pub fn covers(&self, addr: u64, ts: u64) -> bool {
        self.compiled.blob.contains(addr)
            && self.active_from <= ts
            && self.active_to.is_none_or(|end| ts < end)
    }
}

/// Everything JPortal's offline decoder needs about machine code.
#[derive(Debug, Clone)]
pub struct MetadataArchive {
    /// The interpreter's template table (collected at JVM init, §3.1).
    pub templates: TemplateTable,
    /// Every compiled blob ever installed, in install order.
    pub blobs: Vec<ArchivedBlob>,
}

impl MetadataArchive {
    /// The blob covering `addr` at time `ts`.
    ///
    /// Address ranges are reused after eviction, so both coordinates are
    /// needed. Packet timestamps come from periodic TSC packets and lag
    /// real time, so an exact interval match can miss around install/
    /// evict boundaries; when that happens the blob whose activity
    /// interval is *nearest* in time among those covering the address is
    /// chosen (what a real decoder does with export-order metadata).
    pub fn lookup(&self, addr: u64, ts: u64) -> Option<&ArchivedBlob> {
        self.lookup_index(addr, ts).map(|i| &self.blobs[i])
    }

    /// Index-returning variant of [`MetadataArchive::lookup`].
    pub fn lookup_index(&self, addr: u64, ts: u64) -> Option<usize> {
        if let Some(i) = self.blobs.iter().position(|b| b.covers(addr, ts)) {
            return Some(i);
        }
        // Timestamp-skew fallback: nearest interval among address matches.
        self.blobs
            .iter()
            .enumerate()
            .filter(|(_, b)| b.compiled.blob.contains(addr))
            .min_by_key(|(_, b)| {
                let start = b.active_from;
                let end = b.active_to.unwrap_or(u64::MAX);
                if ts < start {
                    start - ts
                } else {
                    ts.saturating_sub(end)
                }
            })
            .map(|(i, _)| i)
    }

    /// The IP filter range covering all JVM-generated code.
    pub fn filter_range(&self) -> (u64, u64) {
        (TEMPLATE_BASE, CODE_END)
    }

    /// Total exported machine-code bytes (metadata size statistics).
    pub fn exported_bytes(&self) -> u64 {
        self.blobs.iter().map(|b| b.compiled.blob.byte_len()).sum()
    }
}

/// The live code cache.
///
/// # Examples
///
/// ```
/// use jportal_jvm::code_cache::CodeCache;
///
/// let cache = CodeCache::new(64 * 1024);
/// assert_eq!(cache.live_bytes(), 0);
/// ```
#[derive(Debug)]
pub struct CodeCache {
    capacity: u64,
    live_bytes: u64,
    /// Live compiled methods.
    live: HashMap<MethodId, usize>,
    /// Archive indices of live blobs, LRU-tracked.
    last_used: HashMap<MethodId, u64>,
    /// Free address ranges `(start, len)`.
    free_list: Vec<(u64, u64)>,
    /// Bump pointer past the highest allocation.
    top: u64,
    archive_blobs: Vec<ArchivedBlob>,
    templates: TemplateTable,
}

impl CodeCache {
    /// Creates a cache that keeps at most `capacity` bytes of live code.
    pub fn new(capacity: u64) -> CodeCache {
        CodeCache {
            capacity,
            live_bytes: 0,
            live: HashMap::new(),
            last_used: HashMap::new(),
            free_list: Vec::new(),
            top: JIT_BASE,
            archive_blobs: Vec::new(),
            templates: TemplateTable::new(TEMPLATE_BASE),
        }
    }

    /// The interpreter template table.
    pub fn templates(&self) -> &TemplateTable {
        &self.templates
    }

    /// Live code bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// The live compiled method, if any.
    pub fn get(&self, method: MethodId) -> Option<&CompiledMethod> {
        self.live
            .get(&method)
            .map(|&i| &self.archive_blobs[i].compiled)
    }

    /// Entry address of the live compiled method.
    pub fn entry_of(&self, method: MethodId) -> Option<u64> {
        self.get(method).map(CompiledMethod::entry)
    }

    /// Archive index of the live compiled method (frames hold this index;
    /// archive entries are never removed, so it stays valid even if the
    /// blob is evicted while on-stack).
    pub fn live_index_of(&self, method: MethodId) -> Option<usize> {
        self.live.get(&method).copied()
    }

    /// The archived blob at `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index was not returned by
    /// [`CodeCache::live_index_of`].
    pub fn blob_by_index(&self, index: usize) -> &ArchivedBlob {
        &self.archive_blobs[index]
    }

    /// Marks an invocation (LRU bookkeeping).
    pub fn touch(&mut self, method: MethodId, now: u64) {
        if let Some(e) = self.last_used.get_mut(&method) {
            *e = now;
        }
    }

    /// Installs a freshly compiled method (compiled at any base; it is
    /// relocated into the cache's allocation). Evicts LRU blobs as needed.
    /// Returns the entry address.
    pub fn install(&mut self, mut compiled: CompiledMethod, now: u64) -> u64 {
        let method = compiled.method;
        // Replacing an existing tier counts as eviction of the old blob.
        if self.live.contains_key(&method) {
            self.evict(method, now);
        }
        let size = compiled.blob.byte_len();
        while self.live_bytes + size > self.capacity && !self.live.is_empty() {
            let victim = *self
                .last_used
                .iter()
                .min_by_key(|&(_, &ts)| ts)
                .map(|(m, _)| m)
                .expect("non-empty");
            self.evict(victim, now);
        }
        let base = self.allocate(size);
        compiled.relocate(base);
        let entry = compiled.entry();
        let idx = self.archive_blobs.len();
        self.archive_blobs.push(ArchivedBlob {
            compiled,
            active_from: now,
            active_to: None,
        });
        self.live.insert(method, idx);
        self.last_used.insert(method, now);
        self.live_bytes += size;
        entry
    }

    /// Evicts a method's blob (sweeper). The blob stays in the archive
    /// with its interval closed — the export-before-reclaim of §3.2.
    pub fn evict(&mut self, method: MethodId, now: u64) {
        if let Some(idx) = self.live.remove(&method) {
            self.last_used.remove(&method);
            let blob = &mut self.archive_blobs[idx];
            blob.active_to = Some(now);
            let (start, end) = blob.compiled.blob.range();
            self.live_bytes -= end - start;
            self.free(start, end - start);
        }
    }

    fn allocate(&mut self, size: u64) -> u64 {
        if let Some(pos) = self.free_list.iter().position(|&(_, len)| len >= size) {
            let (start, len) = self.free_list[pos];
            if len == size {
                self.free_list.remove(pos);
            } else {
                self.free_list[pos] = (start + size, len - size);
            }
            start
        } else {
            let start = self.top;
            self.top += size;
            start
        }
    }

    fn free(&mut self, start: u64, len: u64) {
        self.free_list.push((start, len));
        self.free_list.sort_unstable();
        // Coalesce adjacent ranges.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.free_list.len());
        for &(s, l) in &self.free_list {
            match merged.last_mut() {
                Some((ps, pl)) if *ps + *pl == s => *pl += l,
                _ => merged.push((s, l)),
            }
        }
        self.free_list = merged;
    }

    /// Finishes the run: returns the archive with the template table and
    /// every blob's final interval.
    pub fn into_archive(self) -> MetadataArchive {
        MetadataArchive {
            templates: self.templates,
            blobs: self.archive_blobs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jit::{compile, JitConfig, JitTier};
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{Instruction as I, Program};

    fn program_with_n_methods(n: usize) -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        for i in 0..n {
            let mut m = pb.method(c, format!("f{i}"), 0, true);
            for _ in 0..8 {
                m.emit(I::Iconst(1));
                m.emit(I::Pop);
            }
            m.emit(I::Iconst(0));
            m.emit(I::Ireturn);
            m.finish();
        }
        let mut main = pb.method(c, "main", 0, false);
        main.emit(I::Return);
        let main = main.finish();
        pb.finish_with_entry(main).unwrap()
    }

    fn compiled(p: &Program, i: u32) -> CompiledMethod {
        compile(p, MethodId(i), JitTier::C1, 0, &JitConfig::default())
    }

    #[test]
    fn install_relocates_into_jit_heap() {
        let p = program_with_n_methods(1);
        let mut cache = CodeCache::new(1 << 20);
        let entry = cache.install(compiled(&p, 0), 100);
        assert!((JIT_BASE..CODE_END).contains(&entry));
        let cm = cache.get(MethodId(0)).unwrap();
        assert_eq!(cm.entry(), entry);
        // Debug records relocated consistently with bci_pc.
        let pc = cm.pc_of(0, jportal_bytecode::Bci(3)).unwrap();
        assert_eq!(cm.debug.at_exact(pc).unwrap().bci, jportal_bytecode::Bci(3));
    }

    #[test]
    fn eviction_reuses_addresses_and_archives_intervals() {
        let p = program_with_n_methods(3);
        let one_size = {
            let cm = compiled(&p, 0);
            cm.blob.byte_len()
        };
        // Room for exactly two blobs.
        let mut cache = CodeCache::new(2 * one_size);
        let e0 = cache.install(compiled(&p, 0), 10);
        let _e1 = cache.install(compiled(&p, 1), 20);
        cache.touch(MethodId(1), 30); // method 0 is now LRU
        let e2 = cache.install(compiled(&p, 2), 40);
        // Method 0 evicted; its address reused by method 2.
        assert!(cache.get(MethodId(0)).is_none());
        assert_eq!(e2, e0, "freed range is reused");
        let archive = cache.into_archive();
        assert_eq!(archive.blobs.len(), 3);
        assert_eq!(archive.blobs[0].active_to, Some(40));
        assert_eq!(archive.blobs[2].active_to, None);
        // Timestamped lookup disambiguates the reused address.
        let at_15 = archive.lookup(e0, 15).unwrap();
        assert_eq!(at_15.compiled.method, MethodId(0));
        let at_45 = archive.lookup(e0, 45).unwrap();
        assert_eq!(at_45.compiled.method, MethodId(2));
    }

    #[test]
    fn recompile_replaces_old_blob() {
        let p = program_with_n_methods(1);
        let mut cache = CodeCache::new(1 << 20);
        cache.install(compiled(&p, 0), 10);
        let e2 = cache.install(
            compile(&p, MethodId(0), JitTier::C2, 0, &JitConfig::default()),
            50,
        );
        assert_eq!(cache.entry_of(MethodId(0)), Some(e2));
        let archive = cache.into_archive();
        assert_eq!(archive.blobs.len(), 2);
        assert_eq!(archive.blobs[0].active_to, Some(50));
    }

    #[test]
    fn filter_range_covers_templates_and_jit_code() {
        let p = program_with_n_methods(1);
        let mut cache = CodeCache::new(1 << 20);
        cache.install(compiled(&p, 0), 1);
        let templates_entry = cache
            .templates()
            .template(jportal_bytecode::OpKind::Iadd)
            .entry;
        let archive = cache.into_archive();
        let (lo, hi) = archive.filter_range();
        assert!(templates_entry >= lo && templates_entry < hi);
        let blob_entry = archive.blobs[0].compiled.entry();
        assert!(blob_entry >= lo && blob_entry < hi);
        assert!(archive.exported_bytes() > 0);
    }

    #[test]
    fn free_list_coalesces() {
        let p = program_with_n_methods(3);
        let size = compiled(&p, 0).blob.byte_len();
        let mut cache = CodeCache::new(10 * size);
        cache.install(compiled(&p, 0), 1);
        cache.install(compiled(&p, 1), 2);
        cache.install(compiled(&p, 2), 3);
        cache.evict(MethodId(0), 4);
        cache.evict(MethodId(1), 5);
        // Coalesced hole of 2×size: a 2×size allocation fits there. Use a
        // method twice as large via C2 inline? Simpler: check free_list.
        assert_eq!(cache.free_list.len(), 1);
        assert_eq!(cache.free_list[0].1, 2 * size);
    }
}
