//! The bytecode executor with mode-dependent hardware-event emission.
//!
//! One semantic engine executes bytecode; what the *hardware* sees depends
//! on the executing frame's mode:
//!
//! * **interpreted** frames produce one dispatch TIP per bytecode (the
//!   indirect jump from the current template to the next one) plus a TNT
//!   bit inside conditional templates — Figure 2 of the paper;
//! * **JIT-compiled** frames produce TNT bits at compiled branch sites,
//!   TIPs only at indirect transfers (switches, out-of-line calls,
//!   returns) and nothing at all for straight-line code, direct jumps and
//!   inlined calls — Figure 3.
//!
//! Mode transitions (interpreted caller → compiled callee and vice versa)
//! are just TIPs to the other world's entry address, which is exactly why
//! JPortal needs both the template table and the JIT metadata to decode.

use jportal_bytecode::{Bci, ClassId, Instruction, MethodId, Program};
use jportal_ipt::{HwEvent, ThreadId};

use crate::clock::CostModel;
use crate::code_cache::CodeCache;
use crate::heap::{Handle, Heap, HeapObject, Value};
use crate::jit::OpInfo;
use crate::probes::ProbeRuntime;
use crate::truth::GroundTruth;

/// Terminal failure of a thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An exception reached the top frame without a handler.
    UncaughtException {
        /// Class of the thrown object (`None` for runtime exceptions
        /// such as division by zero).
        class: Option<ClassId>,
    },
    /// The executor's step budget was exhausted (runaway loop guard).
    StepLimitExceeded,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UncaughtException { class } => match class {
                Some(c) => write!(f, "uncaught exception of class {c}"),
                None => write!(f, "uncaught runtime exception"),
            },
            ExecError::StepLimitExceeded => write!(f, "step limit exceeded"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Where a frame executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameMode {
    /// Template interpreter.
    Interp,
    /// Compiled blob `archive_idx`, inline frame `inline_id`
    /// (0 = the root compiled method; >0 = an inlined callee executing
    /// inside its caller's blob).
    Jitted {
        /// Index into the code cache's archive.
        archive_idx: usize,
        /// Inline frame within the blob.
        inline_id: u32,
    },
}

/// One activation record.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Executing method.
    pub method: MethodId,
    /// Next instruction to execute.
    pub bci: Bci,
    /// Local variable slots.
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
    /// Ball–Larus path register (instrumentation baselines).
    pub path_reg: u64,
    /// Execution mode.
    pub mode: FrameMode,
}

/// Run state of a thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Has work to do.
    Runnable,
    /// Entry method returned.
    Finished,
    /// Terminated by an error.
    Failed(ExecError),
}

/// A thread: its frame stack and status.
#[derive(Debug, Clone)]
pub struct ThreadState {
    /// Thread identity (matches the sideband records).
    pub id: ThreadId,
    /// The frame stack (last = current).
    pub frames: Vec<Frame>,
    /// Run status.
    pub status: ThreadStatus,
    /// `true` once the initial PGE event has been emitted.
    started: bool,
    /// Executed steps (runaway guard).
    steps: u64,
}

impl ThreadState {
    /// The current frame.
    ///
    /// # Panics
    ///
    /// Panics on a finished thread.
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("live thread has frames")
    }

    fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("live thread has frames")
    }

    /// `true` if the thread can still run.
    pub fn is_runnable(&self) -> bool {
        self.status == ThreadStatus::Runnable
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

/// Consumer of hardware events (the PT encoder, or a no-op when tracing
/// is disabled).
pub trait EventSink {
    /// Receives one machine-level event.
    fn emit(&mut self, ev: HwEvent);
}

/// Discards all events (tracing disabled — the overhead baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _ev: HwEvent) {}
}

impl EventSink for Vec<HwEvent> {
    fn emit(&mut self, ev: HwEvent) {
        self.push(ev);
    }
}

/// Result of one executed bytecode.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepResult {
    /// Cycles consumed.
    pub cost: u64,
    /// Method invoked by this step, if it was a call (tiering input).
    pub invoked: Option<MethodId>,
    /// Hardware events emitted by this step (PT stall accounting).
    pub events: u32,
}

/// The execution engine: program + heap + probe runtime + ground truth.
#[derive(Debug)]
pub struct Executor<'p> {
    program: &'p Program,
    /// Shared heap.
    pub heap: Heap,
    /// Instrumentation-probe results.
    pub probes: ProbeRuntime,
    /// Ground-truth recorder.
    pub truth: GroundTruth,
    /// Cost model.
    pub cost: CostModel,
    /// Hard per-thread step limit.
    pub step_limit: u64,
    /// When `false`, ground-truth bytecode traces are not recorded
    /// (saves memory on overhead-only runs); statistics still are.
    pub record_truth_trace: bool,
    /// Charge the PT trace-write stall per event (only when the run is
    /// actually traced — the untraced baseline must not pay it).
    pub charge_pt_stall: bool,
    /// Sub-cycle PT stall accumulator.
    pt_residual: u64,
}

impl<'p> Executor<'p> {
    /// Creates an executor for `program`.
    pub fn new(program: &'p Program) -> Executor<'p> {
        Executor {
            program,
            heap: Heap::new(),
            probes: ProbeRuntime::new(),
            truth: GroundTruth::new(),
            cost: CostModel::default(),
            step_limit: 200_000_000,
            record_truth_trace: true,
            charge_pt_stall: false,
            pt_residual: 0,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Spawns a thread running `method(args…)`.
    pub fn spawn(
        &mut self,
        id: ThreadId,
        method: MethodId,
        args: &[i64],
        cache: &CodeCache,
    ) -> ThreadState {
        let m = self.program.method(method);
        assert_eq!(args.len(), m.n_args as usize, "argument count");
        let mut locals = vec![Value::Int(0); m.max_locals as usize];
        for (i, &a) in args.iter().enumerate() {
            locals[i] = Value::Int(a);
        }
        let mode = self.mode_of(method, cache);
        self.truth.record_invocation(method);
        ThreadState {
            id,
            frames: vec![Frame {
                method,
                bci: Bci(0),
                locals,
                stack: Vec::new(),
                path_reg: 0,
                mode,
            }],
            status: ThreadStatus::Runnable,
            started: false,
            steps: 0,
        }
    }

    fn mode_of(&self, method: MethodId, cache: &CodeCache) -> FrameMode {
        match cache.live_index_of(method) {
            Some(archive_idx) => FrameMode::Jitted {
                archive_idx,
                inline_id: 0,
            },
            None => FrameMode::Interp,
        }
    }

    /// Machine address at which `frame` currently is (FUP source / TIP
    /// origin).
    fn loc_addr(&self, frame: &Frame, cache: &CodeCache) -> u64 {
        match frame.mode {
            FrameMode::Interp => {
                let op = self.program.method(frame.method).insn(frame.bci).op_kind();
                cache.templates().template(op).entry
            }
            FrameMode::Jitted {
                archive_idx,
                inline_id,
            } => cache
                .blob_by_index(archive_idx)
                .compiled
                .pc_of(inline_id, frame.bci)
                .expect("compiled bci has a pc"),
        }
    }

    /// Entry address of `frame` resumed at its current `bci` (where a
    /// transfer INTO the frame lands).
    fn resume_addr(&self, frame: &Frame, cache: &CodeCache) -> u64 {
        match frame.mode {
            FrameMode::Interp => {
                let op = self.program.method(frame.method).insn(frame.bci).op_kind();
                cache.templates().template(op).entry
            }
            FrameMode::Jitted {
                archive_idx,
                inline_id,
            } => cache
                .blob_by_index(archive_idx)
                .compiled
                .pc_of(inline_id, frame.bci)
                .expect("compiled bci has a pc"),
        }
    }

    /// Executes one bytecode of `thread`.
    ///
    /// `now` is the current simulated time on the thread's core (used for
    /// truth records and timer probes); the caller advances its clock by
    /// the returned cost.
    pub fn step<S: EventSink>(
        &mut self,
        thread: &mut ThreadState,
        cache: &CodeCache,
        sink: &mut S,
        now: u64,
    ) -> StepResult {
        debug_assert!(thread.is_runnable());
        thread.steps += 1;
        if thread.steps > self.step_limit {
            thread.status = ThreadStatus::Failed(ExecError::StepLimitExceeded);
            return StepResult::default();
        }

        let mut events = 0u32;
        // Initial PGE: the first instruction's arrival.
        if !thread.started {
            thread.started = true;
            let target = self.resume_addr(thread.frame(), cache);
            sink.emit(HwEvent::Enable { ip: target });
            events += 1;
        }

        let frame = thread.frame();
        let method = frame.method;
        let bci = frame.bci;
        let mode = frame.mode;
        let insn = self.program.method(method).insn(bci).clone();

        let mut cost = match mode {
            FrameMode::Interp => self.cost.interp_per_bytecode,
            FrameMode::Jitted { .. } => self.cost.jit_per_bytecode,
        };
        if self.record_truth_trace {
            self.truth.record(thread.id, method, bci, now, cost);
        } else {
            self.truth.record_stats_only(method, cost);
        }

        let mut invoked = None;
        let outcome = self.execute(thread, &insn, now, &mut cost);

        // Emit the hardware events implied by the transfer.
        match outcome {
            Transfer::Next => {
                // Straight-line: interp emits the dispatch TIP; JIT nothing.
                let f = thread.frame_mut();
                f.bci = f.bci.next();
                if mode == FrameMode::Interp {
                    let from = self.interp_dispatch(method, bci, cache);
                    let to = self.resume_addr(thread.frame(), cache);
                    sink.emit(HwEvent::Indirect {
                        at: from,
                        target: to,
                    });
                    events += 1;
                }
            }
            Transfer::Branch { taken, target } => match mode {
                FrameMode::Interp => {
                    let op = insn.op_kind();
                    let tpl = cache.templates().template(op);
                    if let Some(cond) = tpl.cond_addr {
                        sink.emit(HwEvent::Cond { at: cond, taken });
                        events += 1;
                    }
                    let f = thread.frame_mut();
                    f.bci = if taken { target } else { bci.next() };
                    let to = self.resume_addr(thread.frame(), cache);
                    sink.emit(HwEvent::Indirect {
                        at: tpl.dispatch_addr,
                        target: to,
                    });
                    events += 1;
                }
                FrameMode::Jitted {
                    archive_idx,
                    inline_id,
                } => {
                    let cm = &cache.blob_by_index(archive_idx).compiled;
                    match cm.op_info(inline_id, bci) {
                        OpInfo::Cond {
                            cond_addr,
                            taken_means_bytecode_taken,
                        } => {
                            let machine_taken = taken == taken_means_bytecode_taken;
                            sink.emit(HwEvent::Cond {
                                at: cond_addr,
                                taken: machine_taken,
                            });
                            events += 1;
                        }
                        other => {
                            debug_assert!(false, "branch without Cond info: {other:?}");
                        }
                    }
                    let f = thread.frame_mut();
                    f.bci = if taken { target } else { bci.next() };
                }
            },
            Transfer::Jump { target } => {
                let f = thread.frame_mut();
                f.bci = target;
                match mode {
                    FrameMode::Interp => {
                        let from = self.interp_dispatch(method, bci, cache);
                        let to = self.resume_addr(thread.frame(), cache);
                        sink.emit(HwEvent::Indirect {
                            at: from,
                            target: to,
                        });
                        events += 1;
                    }
                    FrameMode::Jitted { .. } => {
                        // Direct machine jump: no packet.
                    }
                }
            }
            Transfer::Switch { target } => {
                let f = thread.frame_mut();
                f.bci = target;
                match mode {
                    FrameMode::Interp => {
                        let from = self.interp_dispatch(method, bci, cache);
                        let to = self.resume_addr(thread.frame(), cache);
                        sink.emit(HwEvent::Indirect {
                            at: from,
                            target: to,
                        });
                        events += 1;
                    }
                    FrameMode::Jitted {
                        archive_idx,
                        inline_id,
                    } => {
                        let cm = &cache.blob_by_index(archive_idx).compiled;
                        if let OpInfo::Switch { dispatch_addr } = cm.op_info(inline_id, bci) {
                            let to = cm.pc_of(inline_id, target).expect("switch arm pc");
                            sink.emit(HwEvent::Indirect {
                                at: dispatch_addr,
                                target: to,
                            });
                            events += 1;
                        }
                    }
                }
            }
            Transfer::Call {
                callee,
                args,
                receiver,
            } => {
                invoked = Some(callee);
                cost += self.cost.call_overhead;
                self.truth.record_invocation(callee);
                // Determine call mechanics from the caller's site.
                let inline_push = match mode {
                    FrameMode::Jitted {
                        archive_idx,
                        inline_id,
                    } => {
                        let cm = &cache.blob_by_index(archive_idx).compiled;
                        match cm.op_info(inline_id, bci) {
                            OpInfo::CallInline {
                                callee: callee_inline,
                            } => Some((archive_idx, callee_inline)),
                            _ => None,
                        }
                    }
                    FrameMode::Interp => None,
                };
                let callee_mode = match inline_push {
                    Some((archive_idx, callee_inline)) => FrameMode::Jitted {
                        archive_idx,
                        inline_id: callee_inline,
                    },
                    None => self.mode_of(callee, cache),
                };
                let m = self.program.method(callee);
                let mut locals = vec![Value::Int(0); m.max_locals as usize];
                let base = if receiver.is_some() { 1 } else { 0 };
                if let Some(r) = receiver {
                    locals[0] = Value::Ref(Some(r));
                }
                for (i, v) in args.into_iter().enumerate() {
                    locals[base + i] = v;
                }
                let callee_frame = Frame {
                    method: callee,
                    bci: Bci(0),
                    locals,
                    stack: Vec::new(),
                    path_reg: 0,
                    mode: callee_mode,
                };
                // Event: only out-of-line transfers produce a TIP.
                if inline_push.is_none() {
                    let from = match mode {
                        FrameMode::Interp => self.interp_dispatch(method, bci, cache),
                        FrameMode::Jitted {
                            archive_idx,
                            inline_id,
                        } => {
                            let cm = &cache.blob_by_index(archive_idx).compiled;
                            match cm.op_info(inline_id, bci) {
                                OpInfo::CallOut { call_addr, .. } => call_addr,
                                _ => self.loc_addr(thread.frame(), cache),
                            }
                        }
                    };
                    let to = self.resume_addr(&callee_frame, cache);
                    sink.emit(HwEvent::Indirect {
                        at: from,
                        target: to,
                    });
                    events += 1;
                }
                thread.frames.push(callee_frame);
            }
            Transfer::Return { value } => {
                cost += self.cost.call_overhead / 2;
                let returning = thread.frames.pop().expect("frame to return from");
                let is_inline_return = matches!(
                    returning.mode,
                    FrameMode::Jitted { inline_id, .. } if inline_id != 0
                );
                if let Some(caller) = thread.frames.last_mut() {
                    // The caller's bci still points at the call site;
                    // advance past it and push any return value.
                    let call_bci = caller.bci;
                    caller.bci = caller.bci.next();
                    if let Some(v) = value {
                        caller.stack.push(v);
                    }
                    if !is_inline_return {
                        let from = match returning.mode {
                            FrameMode::Interp => {
                                self.interp_dispatch(returning.method, returning.bci, cache)
                            }
                            FrameMode::Jitted {
                                archive_idx,
                                inline_id,
                            } => {
                                let cm = &cache.blob_by_index(archive_idx).compiled;
                                match cm.op_info(inline_id, returning.bci) {
                                    OpInfo::Ret { ret_addr } => ret_addr,
                                    _ => 0,
                                }
                            }
                        };
                        // Where the caller resumes.
                        let to = match thread.frame().mode {
                            FrameMode::Interp => self.resume_addr(thread.frame(), cache),
                            FrameMode::Jitted {
                                archive_idx,
                                inline_id,
                            } => {
                                let cm = &cache.blob_by_index(archive_idx).compiled;
                                match cm.op_info(inline_id, call_bci) {
                                    OpInfo::CallOut { ret_to, .. } => ret_to,
                                    // Inline caller frame cannot make
                                    // out-of-line calls through here.
                                    _ => cm.pc_of(inline_id, thread.frame().bci).unwrap_or(0),
                                }
                            }
                        };
                        sink.emit(HwEvent::Indirect {
                            at: from,
                            target: to,
                        });
                        events += 1;
                    }
                } else {
                    // Entry method returned: tracing stops for the thread.
                    let from = match returning.mode {
                        FrameMode::Interp => {
                            self.interp_dispatch(returning.method, returning.bci, cache)
                        }
                        FrameMode::Jitted {
                            archive_idx,
                            inline_id,
                        } => {
                            let cm = &cache.blob_by_index(archive_idx).compiled;
                            match cm.op_info(inline_id, returning.bci) {
                                OpInfo::Ret { ret_addr } => ret_addr,
                                _ => 0,
                            }
                        }
                    };
                    sink.emit(HwEvent::Disable { ip: from });
                    events += 1;
                    thread.status = ThreadStatus::Finished;
                }
            }
            Transfer::Throw { class } => {
                let from = self.loc_addr(thread.frame(), cache);
                match self.unwind(thread, class) {
                    Some(()) => {
                        let to = self.resume_addr(thread.frame(), cache);
                        sink.emit(HwEvent::Async { from, to });
                        events += 1;
                    }
                    None => {
                        sink.emit(HwEvent::Disable { ip: from });
                        events += 1;
                        thread.status =
                            ThreadStatus::Failed(ExecError::UncaughtException { class });
                    }
                }
            }
            Transfer::Stay => {}
        }

        if self.charge_pt_stall && events > 0 {
            self.pt_residual += u64::from(events) * self.cost.pt_stall_numer;
            let whole = self.pt_residual / self.cost.pt_stall_denom.max(1);
            self.pt_residual %= self.cost.pt_stall_denom.max(1);
            cost += whole;
        }
        StepResult {
            cost,
            invoked,
            events,
        }
    }

    fn interp_dispatch(&self, method: MethodId, bci: Bci, cache: &CodeCache) -> u64 {
        let op = self.program.method(method).insn(bci).op_kind();
        cache.templates().template(op).dispatch_addr
    }

    /// Unwinds to the nearest matching handler; leaves the thread's top
    /// frame at the handler with the exception reference on the stack.
    /// Returns `None` if no handler exists.
    fn unwind(&mut self, thread: &mut ThreadState, class: Option<ClassId>) -> Option<()> {
        // The thrown object: real `athrow` pops it before we get here; for
        // implicit exceptions there is no object — push null for handlers.
        while let Some(frame) = thread.frames.last_mut() {
            let m = self.program.method(frame.method);
            let found = m.handlers.iter().find(|h| {
                h.covers(frame.bci)
                    && match (h.catch_class, class) {
                        (None, _) => true,
                        (Some(_), None) => false,
                        (Some(hc), Some(tc)) => self.program.is_subclass_of(tc, hc),
                    }
            });
            if let Some(h) = found {
                let target = h.handler;
                frame.stack.clear();
                frame.stack.push(Value::Ref(None));
                frame.bci = target;
                return Some(());
            }
            thread.frames.pop();
        }
        None
    }

    /// Pure bytecode semantics: mutates the frame's stack/locals/heap and
    /// reports the control transfer.
    fn execute(
        &mut self,
        thread: &mut ThreadState,
        insn: &Instruction,
        now: u64,
        cost: &mut u64,
    ) -> Transfer {
        use Instruction as I;
        let program = self.program;
        let frame = thread.frames.last_mut().expect("frame");
        match insn {
            I::Nop => Transfer::Next,
            I::Iconst(v) => {
                frame.stack.push(Value::Int(*v));
                Transfer::Next
            }
            I::AconstNull => {
                frame.stack.push(Value::Ref(None));
                Transfer::Next
            }
            I::Iload(s) => {
                frame.stack.push(frame.locals[*s as usize]);
                Transfer::Next
            }
            I::Istore(s) | I::Astore(s) => {
                let v = frame.stack.pop().expect("verified stack");
                frame.locals[*s as usize] = v;
                Transfer::Next
            }
            I::Aload(s) => {
                frame.stack.push(frame.locals[*s as usize]);
                Transfer::Next
            }
            I::Iinc(s, d) => {
                let v = frame.locals[*s as usize].as_int();
                frame.locals[*s as usize] = Value::Int(v.wrapping_add(i64::from(*d)));
                Transfer::Next
            }
            I::Iadd | I::Isub | I::Imul | I::Iand | I::Ior | I::Ixor | I::Ishl | I::Ishr => {
                let b = frame.stack.pop().expect("rhs").as_int();
                let a = frame.stack.pop().expect("lhs").as_int();
                let r = match insn {
                    I::Iadd => a.wrapping_add(b),
                    I::Isub => a.wrapping_sub(b),
                    I::Imul => a.wrapping_mul(b),
                    I::Iand => a & b,
                    I::Ior => a | b,
                    I::Ixor => a ^ b,
                    I::Ishl => a.wrapping_shl(b as u32 & 63),
                    I::Ishr => a.wrapping_shr(b as u32 & 63),
                    _ => unreachable!(),
                };
                frame.stack.push(Value::Int(r));
                Transfer::Next
            }
            I::Idiv | I::Irem => {
                let b = frame.stack.pop().expect("rhs").as_int();
                let a = frame.stack.pop().expect("lhs").as_int();
                if b == 0 {
                    return Transfer::Throw { class: None };
                }
                let r = if matches!(insn, I::Idiv) {
                    a.wrapping_div(b)
                } else {
                    a.wrapping_rem(b)
                };
                frame.stack.push(Value::Int(r));
                Transfer::Next
            }
            I::Ineg => {
                let a = frame.stack.pop().expect("operand").as_int();
                frame.stack.push(Value::Int(a.wrapping_neg()));
                Transfer::Next
            }
            I::Dup => {
                let v = *frame.stack.last().expect("top");
                frame.stack.push(v);
                Transfer::Next
            }
            I::Pop => {
                frame.stack.pop().expect("top");
                Transfer::Next
            }
            I::Swap => {
                let n = frame.stack.len();
                frame.stack.swap(n - 1, n - 2);
                Transfer::Next
            }
            I::Goto(t) => Transfer::Jump { target: *t },
            I::If(k, t) => {
                let a = frame.stack.pop().expect("operand").as_int();
                Transfer::Branch {
                    taken: k.eval(a, 0),
                    target: *t,
                }
            }
            I::IfICmp(k, t) => {
                let b = frame.stack.pop().expect("rhs").as_int();
                let a = frame.stack.pop().expect("lhs").as_int();
                Transfer::Branch {
                    taken: k.eval(a, b),
                    target: *t,
                }
            }
            I::IfNull(t) => {
                let r = frame.stack.pop().expect("ref").as_ref_value();
                Transfer::Branch {
                    taken: r.is_none(),
                    target: *t,
                }
            }
            I::TableSwitch {
                low,
                targets,
                default,
            } => {
                let v = frame.stack.pop().expect("key").as_int();
                let idx = v.wrapping_sub(*low);
                let target = if idx >= 0 && (idx as usize) < targets.len() {
                    targets[idx as usize]
                } else {
                    *default
                };
                Transfer::Switch { target }
            }
            I::LookupSwitch { pairs, default } => {
                let v = frame.stack.pop().expect("key").as_int();
                let target = pairs
                    .iter()
                    .find(|&&(k, _)| k == v)
                    .map(|&(_, t)| t)
                    .unwrap_or(*default);
                Transfer::Switch { target }
            }
            I::InvokeStatic(callee) => {
                let m = program.method(*callee);
                let n = m.n_args as usize;
                let split = frame.stack.len() - n;
                let args: Vec<Value> = frame.stack.split_off(split);
                Transfer::Call {
                    callee: *callee,
                    args,
                    receiver: None,
                }
            }
            I::InvokeVirtual { declared_in, slot } => {
                // Receiver sits below the (n_args - 1) explicit arguments
                // (the receiver occupies local 0 and counts in n_args).
                let slot_method = program.class(*declared_in).vtable[*slot as usize];
                let n_explicit = program.method(slot_method).n_args as usize - 1;
                let split = frame.stack.len() - n_explicit;
                let args: Vec<Value> = frame.stack.split_off(split);
                let receiver = frame.stack.pop().expect("receiver").as_ref_value();
                let Some(receiver) = receiver else {
                    return Transfer::Throw { class: None }; // NPE
                };
                let dyn_class = self
                    .heap
                    .class_of(receiver)
                    .expect("receiver is an instance");
                let callee = program.resolve_virtual(dyn_class, *slot);
                Transfer::Call {
                    callee,
                    args,
                    receiver: Some(receiver),
                }
            }
            I::Ireturn | I::Areturn => {
                let v = frame.stack.pop().expect("return value");
                Transfer::Return { value: Some(v) }
            }
            I::Return => Transfer::Return { value: None },
            I::New(c) => {
                let n_fields = program.class(*c).n_fields;
                let h = self.heap.alloc_instance(*c, n_fields);
                frame.stack.push(Value::Ref(Some(h)));
                Transfer::Next
            }
            I::GetField(i) => {
                let Some(h) = frame.stack.pop().expect("ref").as_ref_value() else {
                    return Transfer::Throw { class: None };
                };
                match self.heap.get(h) {
                    HeapObject::Instance { fields, .. } => {
                        frame.stack.push(fields[*i as usize]);
                        Transfer::Next
                    }
                    HeapObject::IntArray { .. } => Transfer::Throw { class: None },
                }
            }
            I::PutField(i) => {
                let v = frame.stack.pop().expect("value");
                let Some(h) = frame.stack.pop().expect("ref").as_ref_value() else {
                    return Transfer::Throw { class: None };
                };
                match self.heap.get_mut(h) {
                    HeapObject::Instance { fields, .. } => {
                        fields[*i as usize] = v;
                        Transfer::Next
                    }
                    HeapObject::IntArray { .. } => Transfer::Throw { class: None },
                }
            }
            I::NewArray => {
                let len = frame.stack.pop().expect("len").as_int();
                if len < 0 {
                    return Transfer::Throw { class: None };
                }
                let h = self.heap.alloc_array(len as usize);
                frame.stack.push(Value::Ref(Some(h)));
                Transfer::Next
            }
            I::ArrayLoad => {
                let idx = frame.stack.pop().expect("index").as_int();
                let Some(h) = frame.stack.pop().expect("array").as_ref_value() else {
                    return Transfer::Throw { class: None };
                };
                match self.heap.get(h) {
                    HeapObject::IntArray { elems } => {
                        if idx < 0 || idx as usize >= elems.len() {
                            return Transfer::Throw { class: None };
                        }
                        frame.stack.push(Value::Int(elems[idx as usize]));
                        Transfer::Next
                    }
                    HeapObject::Instance { .. } => Transfer::Throw { class: None },
                }
            }
            I::ArrayStore => {
                let v = frame.stack.pop().expect("value").as_int();
                let idx = frame.stack.pop().expect("index").as_int();
                let Some(h) = frame.stack.pop().expect("array").as_ref_value() else {
                    return Transfer::Throw { class: None };
                };
                match self.heap.get_mut(h) {
                    HeapObject::IntArray { elems } => {
                        if idx < 0 || idx as usize >= elems.len() {
                            return Transfer::Throw { class: None };
                        }
                        elems[idx as usize] = v;
                        Transfer::Next
                    }
                    HeapObject::Instance { .. } => Transfer::Throw { class: None },
                }
            }
            I::ArrayLength => {
                let Some(h) = frame.stack.pop().expect("array").as_ref_value() else {
                    return Transfer::Throw { class: None };
                };
                match self.heap.get(h) {
                    HeapObject::IntArray { elems } => {
                        frame.stack.push(Value::Int(elems.len() as i64));
                        Transfer::Next
                    }
                    HeapObject::Instance { .. } => Transfer::Throw { class: None },
                }
            }
            I::Athrow => {
                let r = frame.stack.pop().expect("throwable").as_ref_value();
                let class = r.and_then(|h| self.heap.class_of(h));
                Transfer::Throw { class }
            }
            I::Probe(kind) => {
                *cost += self.cost.probe_cost(*kind);
                self.probes.fire(*kind, &mut frame.path_reg, now);
                Transfer::Next
            }
        }
    }
}

/// Control transfer decided by one executed bytecode.
#[derive(Debug, Clone)]
enum Transfer {
    /// Fall through to `bci + 1`.
    Next,
    /// Conditional branch outcome.
    Branch {
        /// Whether the bytecode branch was taken.
        taken: bool,
        /// The taken target.
        target: Bci,
    },
    /// Unconditional `goto`.
    Jump {
        /// Target bci.
        target: Bci,
    },
    /// Switch dispatch.
    Switch {
        /// Selected arm.
        target: Bci,
    },
    /// Method call.
    Call {
        /// Resolved callee.
        callee: MethodId,
        /// Explicit arguments (receiver excluded).
        args: Vec<Value>,
        /// Receiver for virtual calls.
        receiver: Option<Handle>,
    },
    /// Method return.
    Return {
        /// Returned value, if any.
        value: Option<Value>,
    },
    /// Exception raised.
    Throw {
        /// Thrown class (`None` = runtime exception).
        class: Option<ClassId>,
    },
    /// No control transfer (unused placeholder for future ops).
    #[allow(dead_code)]
    Stay,
}
