//! The tiered JIT compiler (C1/C2).
//!
//! Compiles a method's bytecode CFG to synthetic machine code:
//!
//! * **C1** lays blocks out in bytecode order and does not inline;
//! * **C2** lays blocks out in reverse post-order (so conditional branches
//!   get inverted when their taken side becomes the fall-through — real
//!   compilers do this constantly and it is exactly what makes mapping
//!   machine branches back to bytecode non-trivial) and **inlines** small
//!   statically-monomorphic callees, recording inline frames in the debug
//!   table (§3.2, §6 "Dealing with Inlined Code").
//!
//! Every bytecode's first machine PC gets a [`DebugRecord`]; branch,
//! switch, call and return sites additionally get [`OpInfo`] entries the
//! executor uses to emit hardware events at the right machine addresses.
//! The `debug_degrade` knob drops a fraction of debug records after
//! compilation, modelling the metadata imprecision of aggressive
//! optimization (the decoder sees the degraded table; the executor always
//! uses the exact side tables).

use std::collections::HashMap;

use jportal_bytecode::{Bci, Instruction, MethodId, Program};
use jportal_cfg::Cfg;

use crate::debug_info::{DebugRecord, DebugTable};
use crate::machine::{CodeBlob, MachineInsn, MiKind};

/// Compilation tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JitTier {
    /// Fast, non-inlining, bytecode-order layout.
    C1,
    /// Optimizing: inlining + block reordering.
    C2,
}

/// JIT configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitConfig {
    /// Maximum callee size (bytecodes) eligible for inlining (C2).
    pub inline_max_size: usize,
    /// Maximum inline nesting depth (C2).
    pub inline_max_depth: u32,
    /// Fraction of debug records dropped after compilation (`0.0` = exact
    /// metadata; the paper's OpenJDK 12 metadata is "precise enough", so
    /// small values model it well).
    pub debug_degrade: f64,
    /// Seed for deterministic degradation.
    pub degrade_seed: u64,
}

impl Default for JitConfig {
    fn default() -> JitConfig {
        JitConfig {
            inline_max_size: 12,
            inline_max_depth: 2,
            debug_degrade: 0.0,
            degrade_seed: 0x5EED,
        }
    }
}

/// Executor-facing description of one compiled bytecode site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpInfo {
    /// No event-relevant machine structure.
    Plain,
    /// Conditional branch.
    Cond {
        /// Machine address of the conditional branch instruction.
        cond_addr: u64,
        /// `true` if the machine branch being taken means the bytecode
        /// branch was taken (layout may invert this).
        taken_means_bytecode_taken: bool,
    },
    /// Switch dispatch.
    Switch {
        /// Machine address of the indirect jump.
        dispatch_addr: u64,
    },
    /// Out-of-line call.
    CallOut {
        /// Machine address of the indirect call.
        call_addr: u64,
        /// Machine address execution resumes at after the callee returns.
        ret_to: u64,
    },
    /// Call inlined into this blob.
    CallInline {
        /// Inline frame id of the callee.
        callee: u32,
    },
    /// Method return from the root frame.
    Ret {
        /// Machine address of the `ret` instruction.
        ret_addr: u64,
    },
}

/// A compiled method: machine code + debug metadata + executor side
/// tables.
#[derive(Debug, Clone)]
pub struct CompiledMethod {
    /// The compiled (root) method.
    pub method: MethodId,
    /// Tier it was compiled at.
    pub tier: JitTier,
    /// The machine-code image.
    pub blob: CodeBlob,
    /// Debug metadata exported to JPortal (possibly degraded).
    pub debug: DebugTable,
    /// Exact machine PC of every `(inline_id, bci)` — the executor's
    /// ground-truth mapping, never degraded.
    bci_pc: HashMap<(u32, u32), u64>,
    /// Event-emission info per `(inline_id, bci)`.
    op_index: HashMap<(u32, u32), OpInfo>,
}

impl CompiledMethod {
    /// Entry address.
    pub fn entry(&self) -> u64 {
        self.blob.range().0
    }

    /// Exact machine PC of a bytecode site.
    pub fn pc_of(&self, inline_id: u32, bci: Bci) -> Option<u64> {
        self.bci_pc.get(&(inline_id, bci.0)).copied()
    }

    /// Executor info for a bytecode site.
    pub fn op_info(&self, inline_id: u32, bci: Bci) -> OpInfo {
        self.op_index
            .get(&(inline_id, bci.0))
            .copied()
            .unwrap_or(OpInfo::Plain)
    }

    /// Number of machine instructions (metadata-export cost basis).
    pub fn insn_count(&self) -> usize {
        self.blob.insns().len()
    }

    /// Rebases the compiled method so its code starts at `new_base`
    /// (compilation emits position-dependent addresses; the code cache
    /// relocates the blob into its allocation).
    pub fn relocate(&mut self, new_base: u64) {
        let (old_base, _) = self.blob.range();
        if new_base == old_base {
            return;
        }
        let shift = |a: u64| a.wrapping_add(new_base).wrapping_sub(old_base);
        let mut insns = self.blob.insns().to_vec();
        for i in &mut insns {
            i.addr = shift(i.addr);
            match &mut i.kind {
                MiKind::CondBranch { target, .. }
                | MiKind::Jump { target }
                | MiKind::Call { target } => *target = shift(*target),
                _ => {}
            }
        }
        self.blob = CodeBlob::new(new_base, insns);
        let mut debug = DebugTable::new(self.method);
        // Rebuild: copy inline tree then shifted records.
        for (i, f) in self.debug.inline_tree().iter().enumerate().skip(1) {
            let id =
                debug.add_inline_frame(f.parent.expect("non-root frame"), f.method, f.caller_bci);
            debug_assert_eq!(id as usize, i);
        }
        for r in self.debug.records() {
            debug.push(DebugRecord {
                pc: shift(r.pc),
                inline_id: r.inline_id,
                bci: r.bci,
            });
        }
        self.debug = debug;
        for pc in self.bci_pc.values_mut() {
            *pc = shift(*pc);
        }
        for info in self.op_index.values_mut() {
            match info {
                OpInfo::Cond { cond_addr, .. } => *cond_addr = shift(*cond_addr),
                OpInfo::Switch { dispatch_addr } => *dispatch_addr = shift(*dispatch_addr),
                OpInfo::CallOut { call_addr, ret_to } => {
                    *call_addr = shift(*call_addr);
                    *ret_to = shift(*ret_to);
                }
                OpInfo::Ret { ret_addr } => *ret_addr = shift(*ret_addr),
                OpInfo::Plain | OpInfo::CallInline { .. } => {}
            }
        }
    }
}

/// Compiles `method` at `tier`, placing code at `base` (allocated by the
/// code cache).
///
/// # Panics
///
/// Panics if the method is malformed (verified programs never are).
pub fn compile(
    program: &Program,
    method: MethodId,
    tier: JitTier,
    base: u64,
    cfg: &JitConfig,
) -> CompiledMethod {
    let mut c = Codegen {
        program,
        tier,
        cfg,
        debug: DebugTable::new(method),
        bci_pc: HashMap::new(),
        op_index: HashMap::new(),
        insns: Vec::new(),
        next_addr: base,
        fixups: Vec::new(),
    };

    let plan = c.build_plan(method, 0, &mut vec![method], 0);
    // Prologue.
    c.emit(MiKind::Other);
    c.emit(MiKind::Other);
    c.emit_plan(&plan);
    c.apply_fixups();

    let mut debug = c.debug;
    // Mix the method and tier into the seed so every blob loses a
    // *different* slice of its mapping.
    let seed = cfg
        .degrade_seed
        .wrapping_add(u64::from(method.0) << 32)
        .wrapping_add(match tier {
            JitTier::C1 => 1,
            JitTier::C2 => 2,
        });
    debug.degrade(cfg.debug_degrade, seed);
    CompiledMethod {
        method,
        tier,
        blob: CodeBlob::new(base, c.insns),
        debug,
        bci_pc: c.bci_pc,
        op_index: c.op_index,
    }
}

/// One planned emission item: a bytecode of some inline frame, plus the
/// spliced plan of an inlined callee right after a `CallInline` item.
#[derive(Debug)]
enum PlanItem {
    Op {
        inline_id: u32,
        bci: Bci,
    },
    /// Marks the start of an inlined callee's body (no machine code).
    Splice(Vec<PlanItem>),
}

struct Codegen<'p> {
    program: &'p Program,
    tier: JitTier,
    cfg: &'p JitConfig,
    debug: DebugTable,
    bci_pc: HashMap<(u32, u32), u64>,
    op_index: HashMap<(u32, u32), OpInfo>,
    insns: Vec<MachineInsn>,
    next_addr: u64,
    /// Pending branch-target patches: (insn index, inline_id, bci,
    /// patch slot) where slot 0 = CondBranch/Jump target.
    fixups: Vec<(usize, u32, u32)>,
}

impl<'p> Codegen<'p> {
    const INSN_LEN: u8 = 4;

    fn emit(&mut self, kind: MiKind) -> u64 {
        let addr = self.next_addr;
        self.insns.push(MachineInsn {
            addr,
            len: Self::INSN_LEN,
            kind,
        });
        self.next_addr += u64::from(Self::INSN_LEN);
        addr
    }

    /// Builds the emission plan for `method` as inline frame `inline_id`.
    fn build_plan(
        &mut self,
        method: MethodId,
        inline_id: u32,
        stack: &mut Vec<MethodId>,
        depth: u32,
    ) -> Vec<PlanItem> {
        let m = self.program.method(method);
        let layout: Vec<Bci> = match (self.tier, inline_id) {
            (JitTier::C2, 0) => {
                // Root frame of C2: RPO block layout.
                let cfg = Cfg::build(m);
                let mut order = Vec::with_capacity(m.code.len());
                for b in cfg.reverse_post_order() {
                    let blk = cfg.block(b);
                    for bci in blk.start.0..blk.end.0 {
                        order.push(Bci(bci));
                    }
                }
                order
            }
            _ => (0..m.code.len() as u32).map(Bci).collect(),
        };

        let mut plan = Vec::with_capacity(layout.len());
        for bci in layout {
            plan.push(PlanItem::Op { inline_id, bci });
            if self.tier == JitTier::C2 && depth < self.cfg.inline_max_depth {
                if let Some(callee) = self.inline_candidate(m.insn(bci), stack) {
                    let callee_id = self.debug.add_inline_frame(inline_id, callee, bci);
                    stack.push(callee);
                    let inner = self.build_plan(callee, callee_id, stack, depth + 1);
                    stack.pop();
                    // Replace the Op we just pushed with a CallInline
                    // marker by recording op_index now; the Op item stays
                    // (it anchors the invoke's debug record).
                    self.op_index
                        .insert((inline_id, bci.0), OpInfo::CallInline { callee: callee_id });
                    plan.push(PlanItem::Splice(inner));
                }
            }
        }
        plan
    }

    fn inline_candidate(&self, insn: &Instruction, stack: &[MethodId]) -> Option<MethodId> {
        let callee = match insn {
            Instruction::InvokeStatic(m) => *m,
            Instruction::InvokeVirtual { declared_in, slot } => {
                let targets = self.program.virtual_targets(*declared_in, *slot);
                if targets.len() == 1 {
                    targets[0]
                } else {
                    return None;
                }
            }
            _ => return None,
        };
        if stack.contains(&callee) {
            return None; // no recursive inlining
        }
        let code_len = self.program.method(callee).code.len();
        (code_len <= self.cfg.inline_max_size).then_some(callee)
    }

    fn emit_plan(&mut self, plan: &[PlanItem]) {
        // Flatten to know each item's successor (for fall-through checks).
        let flat = flatten(plan);
        for (idx, &(inline_id, bci)) in flat.iter().enumerate() {
            let method = self.debug.method_of(inline_id);
            let insn = self.program.method(method).insn(bci).clone();
            let pc = self.next_addr;
            self.bci_pc.insert((inline_id, bci.0), pc);
            self.debug.push(DebugRecord { pc, inline_id, bci });
            let next_is_fallthrough = flat
                .get(idx + 1)
                .is_some_and(|&(i2, b2)| i2 == inline_id && b2 == bci.next());

            let inlined_call = matches!(
                self.op_index.get(&(inline_id, bci.0)),
                Some(OpInfo::CallInline { .. })
            );

            match &insn {
                _ if inlined_call => {
                    // Anchor insn for the inlined invoke (receiver null
                    // check / guard).
                    self.emit(MiKind::Other);
                }
                Instruction::If(..) | Instruction::IfICmp(..) | Instruction::IfNull(..) => {
                    let taken = insn.branch_targets()[0];
                    self.emit(MiKind::Other); // compare
                    let taken_is_next = flat
                        .get(idx + 1)
                        .is_some_and(|&(i2, b2)| i2 == inline_id && b2 == taken);
                    if taken_is_next && !next_is_fallthrough {
                        // Inverted branch: machine-taken goes to the
                        // bytecode fall-through.
                        let cond_addr = self.emit(MiKind::CondBranch {
                            target: 0,
                            taken_means_bytecode_taken: false,
                        });
                        let i = self.insns.len() - 1;
                        self.fixups.push((i, inline_id, bci.next().0));
                        self.op_index.insert(
                            (inline_id, bci.0),
                            OpInfo::Cond {
                                cond_addr,
                                taken_means_bytecode_taken: false,
                            },
                        );
                    } else {
                        let cond_addr = self.emit(MiKind::CondBranch {
                            target: 0,
                            taken_means_bytecode_taken: true,
                        });
                        let i = self.insns.len() - 1;
                        self.fixups.push((i, inline_id, taken.0));
                        self.op_index.insert(
                            (inline_id, bci.0),
                            OpInfo::Cond {
                                cond_addr,
                                taken_means_bytecode_taken: true,
                            },
                        );
                        if !next_is_fallthrough {
                            let j = self.emit(MiKind::Jump { target: 0 });
                            let _ = j;
                            let i = self.insns.len() - 1;
                            self.fixups.push((i, inline_id, bci.next().0));
                        }
                    }
                }
                Instruction::Goto(t) => {
                    self.emit(MiKind::Jump { target: 0 });
                    let i = self.insns.len() - 1;
                    self.fixups.push((i, inline_id, t.0));
                }
                Instruction::TableSwitch { .. } | Instruction::LookupSwitch { .. } => {
                    self.emit(MiKind::Other); // bounds / lookup
                    let dispatch_addr = self.emit(MiKind::IndirectJump);
                    self.op_index
                        .insert((inline_id, bci.0), OpInfo::Switch { dispatch_addr });
                }
                Instruction::InvokeStatic(_) | Instruction::InvokeVirtual { .. } => {
                    self.emit(MiKind::Other); // argument shuffle
                    let call_addr = self.emit(MiKind::IndirectCall);
                    let ret_to = self.next_addr;
                    self.op_index
                        .insert((inline_id, bci.0), OpInfo::CallOut { call_addr, ret_to });
                    // After an out-of-line call execution resumes here; if
                    // the next plan item is not the continuation, jump.
                    if !next_is_fallthrough {
                        let i_next = flat.get(idx + 1);
                        if i_next.is_some() {
                            self.emit(MiKind::Jump { target: 0 });
                            let i = self.insns.len() - 1;
                            self.fixups.push((i, inline_id, bci.next().0));
                        }
                    }
                }
                Instruction::Ireturn | Instruction::Areturn | Instruction::Return => {
                    if inline_id == 0 {
                        self.emit(MiKind::Other); // epilogue
                        let ret_addr = self.emit(MiKind::Ret);
                        self.op_index
                            .insert((inline_id, bci.0), OpInfo::Ret { ret_addr });
                    } else {
                        // Inline return: execution continues in the parent
                        // frame; jump to the continuation after the splice.
                        let parent = *self.debug.frame(inline_id);
                        self.emit(MiKind::Other);
                        self.emit(MiKind::Jump { target: 0 });
                        let i = self.insns.len() - 1;
                        self.fixups.push((
                            i,
                            parent.parent.expect("inline frame has parent"),
                            parent.caller_bci.next().0,
                        ));
                    }
                }
                _ => {
                    self.emit(MiKind::Other);
                    if !next_is_fallthrough && !insn.is_terminator() && flat.get(idx + 1).is_some()
                    {
                        self.emit(MiKind::Jump { target: 0 });
                        let i = self.insns.len() - 1;
                        self.fixups.push((i, inline_id, bci.next().0));
                    }
                }
            }
        }
    }

    fn apply_fixups(&mut self) {
        for &(insn_idx, inline_id, bci) in &self.fixups {
            let target_pc = *self
                .bci_pc
                .get(&(inline_id, bci))
                .unwrap_or_else(|| panic!("fixup target ({inline_id}, {bci}) not emitted"));
            match &mut self.insns[insn_idx].kind {
                MiKind::CondBranch { target, .. } | MiKind::Jump { target } => *target = target_pc,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
    }
}

fn flatten(plan: &[PlanItem]) -> Vec<(u32, Bci)> {
    let mut out = Vec::new();
    fn rec(items: &[PlanItem], out: &mut Vec<(u32, Bci)>) {
        for item in items {
            match item {
                PlanItem::Op { inline_id, bci } => out.push((*inline_id, *bci)),
                PlanItem::Splice(inner) => rec(inner, out),
            }
        }
    }
    rec(plan, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I};

    fn diamond_program() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "f", 1, true);
        let els = m.label();
        let join = m.label();
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Eq, els);
        m.emit(I::Iconst(1));
        m.jump(join);
        m.bind(els);
        m.emit(I::Iconst(2));
        m.bind(join);
        m.emit(I::Ireturn);
        let f = m.finish();
        let mut main = pb.method(c, "main", 0, false);
        main.emit(I::Iconst(1));
        main.emit(I::InvokeStatic(f));
        main.emit(I::Pop);
        main.emit(I::Return);
        let main = main.finish();
        (pb.finish_with_entry(main).unwrap(), f)
    }

    #[test]
    fn c1_compiles_every_bci() {
        let (p, f) = diamond_program();
        let cm = compile(&p, f, JitTier::C1, 0x10_0000, &JitConfig::default());
        let code_len = p.method(f).code.len() as u32;
        for bci in 0..code_len {
            assert!(
                cm.pc_of(0, Bci(bci)).is_some(),
                "bci {bci} has a machine pc"
            );
        }
        assert_eq!(cm.entry(), 0x10_0000);
        assert!(cm.insn_count() >= code_len as usize);
    }

    #[test]
    fn branch_sites_have_cond_info() {
        let (p, f) = diamond_program();
        let cm = compile(&p, f, JitTier::C1, 0x10_0000, &JitConfig::default());
        match cm.op_info(0, Bci(1)) {
            OpInfo::Cond { cond_addr, .. } => {
                assert!(cm.blob.insn_at(cond_addr).is_some());
                match cm.blob.insn_at(cond_addr).unwrap().kind {
                    MiKind::CondBranch { target, .. } => {
                        // Taken target must be bci 4 (iconst 2) under C1
                        // bytecode-order layout.
                        assert_eq!(Some(target), cm.pc_of(0, Bci(4)));
                    }
                    other => panic!("expected CondBranch, got {other:?}"),
                }
            }
            other => panic!("expected Cond info, got {other:?}"),
        }
        match cm.op_info(0, Bci(5)) {
            OpInfo::Ret { ret_addr } => {
                assert_eq!(cm.blob.insn_at(ret_addr).unwrap().kind, MiKind::Ret);
            }
            other => panic!("expected Ret, got {other:?}"),
        }
    }

    #[test]
    fn debug_records_map_pcs_to_bcis() {
        let (p, f) = diamond_program();
        let cm = compile(&p, f, JitTier::C1, 0x20_0000, &JitConfig::default());
        for bci in 0..p.method(f).code.len() as u32 {
            let pc = cm.pc_of(0, Bci(bci)).unwrap();
            let rec = cm.debug.at_exact(pc).unwrap();
            assert_eq!(rec.bci, Bci(bci));
            assert_eq!(rec.inline_id, 0);
        }
    }

    #[test]
    fn c2_inlines_small_static_callee() {
        let (p, _) = diamond_program();
        let main = p.entry();
        let cm = compile(&p, main, JitTier::C2, 0x30_0000, &JitConfig::default());
        assert!(
            cm.debug.inline_tree().len() == 2,
            "callee f should be inlined"
        );
        match cm.op_info(0, Bci(1)) {
            OpInfo::CallInline { callee } => {
                assert_eq!(cm.debug.method_of(callee), MethodId(0));
                // The inlined callee's bcis all have machine pcs.
                for bci in 0..p.method(MethodId(0)).code.len() as u32 {
                    assert!(cm.pc_of(callee, Bci(bci)).is_some());
                }
            }
            other => panic!("expected inlined call, got {other:?}"),
        }
    }

    #[test]
    fn c1_never_inlines() {
        let (p, _) = diamond_program();
        let main = p.entry();
        let cm = compile(&p, main, JitTier::C1, 0x40_0000, &JitConfig::default());
        assert_eq!(cm.debug.inline_tree().len(), 1);
        assert!(matches!(cm.op_info(0, Bci(1)), OpInfo::CallOut { .. }));
    }

    #[test]
    fn all_branch_fixups_resolve_inside_blob() {
        let (p, f) = diamond_program();
        for tier in [JitTier::C1, JitTier::C2] {
            let cm = compile(&p, f, tier, 0x50_0000, &JitConfig::default());
            for insn in cm.blob.insns() {
                match insn.kind {
                    MiKind::CondBranch { target, .. } | MiKind::Jump { target } => {
                        assert!(
                            cm.blob.contains(target),
                            "{tier:?}: branch target {target:#x} escapes blob"
                        );
                        assert!(cm.blob.insn_at(target).is_some());
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn recursive_methods_are_not_inlined() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "fib", 1, true);
        let base = m.label();
        let id = m.id();
        m.emit(I::Iload(0));
        m.emit(I::Iconst(2));
        m.branch_if_icmp(CmpKind::Lt, base);
        m.emit(I::Iload(0));
        m.emit(I::Iconst(1));
        m.emit(I::Isub);
        m.emit(I::InvokeStatic(id));
        m.emit(I::Ireturn);
        m.bind(base);
        m.emit(I::Iload(0));
        m.emit(I::Ireturn);
        let fib = m.finish();
        let mut main = pb.method(c, "main", 0, false);
        main.emit(I::Iconst(5));
        main.emit(I::InvokeStatic(fib));
        main.emit(I::Pop);
        main.emit(I::Return);
        let main = main.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let cm = compile(&p, fib, JitTier::C2, 0x60_0000, &JitConfig::default());
        assert!(matches!(cm.op_info(0, Bci(6)), OpInfo::CallOut { .. }));
    }

    #[test]
    fn degraded_debug_keeps_side_tables_exact() {
        let (p, f) = diamond_program();
        let cfg = JitConfig {
            debug_degrade: 0.8,
            ..JitConfig::default()
        };
        let cm = compile(&p, f, JitTier::C1, 0x70_0000, &cfg);
        // Debug table lost records…
        assert!(cm.debug.records().len() < p.method(f).code.len());
        // …but the executor's mapping is complete.
        for bci in 0..p.method(f).code.len() as u32 {
            assert!(cm.pc_of(0, Bci(bci)).is_some());
        }
    }
}
