//! The simulated JVM.
//!
//! A faithful-in-structure stand-in for HotSpot as JPortal uses it
//! (paper §2, §3, §6): bytecode starts out interpreted by a **template
//! interpreter** whose per-opcode machine-code templates live at fixed
//! addresses in the code cache; hot methods are compiled by a **tiered
//! JIT** (C1, then C2 with inlining and block reordering) that records
//! **debug information** mapping machine PCs back to `method@bci` with
//! inline paths; compiled code lives in a bounded **code cache** whose
//! sweeper can reclaim cold blobs — JPortal-style, code and metadata are
//! exported *before* reclamation.
//!
//! Executing a program produces, per scheduled core, the machine-level
//! control-flow events ([`jportal_ipt::HwEvent`]) that the PT encoder
//! turns into packets, and — on the side — the ground-truth bytecode trace
//! that the paper obtained from Ball–Larus instrumentation.
//!
//! Modules:
//!
//! * [`machine`] — synthetic machine instructions and code blobs,
//! * [`template`] — the interpreter's template table (machine-code
//!   metadata of §3.1),
//! * [`debug_info`] — JIT debug records with inline paths (§3.2),
//! * [`jit`] — the tiered compiler (C1/C2),
//! * [`code_cache`] — allocation, eviction, export-before-reclaim,
//! * [`heap`] — values, objects and arrays,
//! * [`probes`] — the instrumentation-probe runtime for the baselines,
//! * [`clock`] — the cycle cost model,
//! * [`exec`] — the bytecode executor with mode-dependent event emission,
//! * [`runtime`] — the whole-JVM driver (threads, scheduler, tracing).

pub mod clock;
pub mod code_cache;
pub mod debug_info;
pub mod exec;
pub mod heap;
pub mod jit;
pub mod machine;
pub mod probes;
pub mod runtime;
pub mod template;
pub mod truth;

pub use clock::CostModel;
pub use code_cache::{CodeCache, MetadataArchive};
pub use debug_info::{DebugRecord, DebugTable};
pub use exec::{ExecError, Executor};
pub use jit::{CompiledMethod, JitConfig, JitTier};
pub use machine::{CodeBlob, MachineInsn, MiKind};
pub use runtime::{Jvm, JvmConfig, RunResult};
pub use template::TemplateTable;
pub use truth::{GroundTruth, TruthEvent};
