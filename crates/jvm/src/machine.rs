//! Synthetic machine code.
//!
//! The simulation does not model x86 semantics — only what PT and the
//! decoder care about: instruction addresses, sizes, and control-flow
//! kinds. A [`CodeBlob`] is a walkable image: given an entry address and a
//! TNT/TIP supply, a decoder can reproduce the machine-level path, which
//! is precisely what libipt does with the real binary (paper §3.2).

/// Control-flow kind of one machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiKind {
    /// Straight-line instruction (arithmetic, load/store, compare…).
    Other,
    /// Conditional branch.
    CondBranch {
        /// Branch target when the machine branch is taken.
        target: u64,
        /// `true` if taking the machine branch corresponds to the
        /// *bytecode* branch being taken (the JIT may invert branches
        /// during layout).
        taken_means_bytecode_taken: bool,
    },
    /// Direct unconditional jump — produces **no** PT packet; the decoder
    /// follows it from the code image.
    Jump {
        /// Jump target.
        target: u64,
    },
    /// Indirect jump (switch dispatch, interpreter dispatch) — TIP.
    IndirectJump,
    /// Direct call — no packet; decoder follows.
    Call {
        /// Callee entry.
        target: u64,
    },
    /// Indirect call (virtual dispatch, resolved call stubs) — TIP.
    IndirectCall,
    /// Return — TIP.
    Ret,
}

impl MiKind {
    /// `true` if executing this instruction emits a TIP packet.
    pub fn emits_tip(self) -> bool {
        matches!(
            self,
            MiKind::IndirectJump | MiKind::IndirectCall | MiKind::Ret
        )
    }

    /// `true` if this instruction ends straight-line decoding (the decoder
    /// must consult TNT/TIP or the image to continue).
    pub fn is_control(self) -> bool {
        !matches!(self, MiKind::Other)
    }
}

/// One synthetic machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineInsn {
    /// Address of the instruction.
    pub addr: u64,
    /// Encoded length in bytes.
    pub len: u8,
    /// Control-flow kind.
    pub kind: MiKind,
}

impl MachineInsn {
    /// Address of the next sequential instruction.
    pub fn next_addr(&self) -> u64 {
        self.addr + u64::from(self.len)
    }
}

/// A contiguous, walkable machine-code image.
///
/// # Examples
///
/// ```
/// use jportal_jvm::machine::{CodeBlob, MachineInsn, MiKind};
///
/// let blob = CodeBlob::new(
///     0x1000,
///     vec![
///         MachineInsn { addr: 0x1000, len: 4, kind: MiKind::Other },
///         MachineInsn { addr: 0x1004, len: 4, kind: MiKind::Ret },
///     ],
/// );
/// assert_eq!(blob.range(), (0x1000, 0x1008));
/// assert_eq!(blob.insn_at(0x1004).unwrap().kind, MiKind::Ret);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeBlob {
    start: u64,
    end: u64,
    insns: Vec<MachineInsn>,
}

impl CodeBlob {
    /// Creates a blob from instructions sorted by address.
    ///
    /// # Panics
    ///
    /// Panics if `insns` is empty, unsorted, or not contiguous with
    /// `start`.
    pub fn new(start: u64, insns: Vec<MachineInsn>) -> CodeBlob {
        assert!(!insns.is_empty(), "empty code blob");
        let mut expected = start;
        for i in &insns {
            assert_eq!(i.addr, expected, "non-contiguous machine code");
            expected = i.next_addr();
        }
        CodeBlob {
            start,
            end: expected,
            insns,
        }
    }

    /// Address range `[start, end)`.
    pub fn range(&self) -> (u64, u64) {
        (self.start, self.end)
    }

    /// `true` if `addr` falls inside the blob.
    pub fn contains(&self, addr: u64) -> bool {
        self.start <= addr && addr < self.end
    }

    /// The instruction starting exactly at `addr`.
    pub fn insn_at(&self, addr: u64) -> Option<&MachineInsn> {
        let idx = self.insns.binary_search_by_key(&addr, |i| i.addr).ok()?;
        Some(&self.insns[idx])
    }

    /// Index of the instruction starting exactly at `addr`.
    pub fn index_of(&self, addr: u64) -> Option<usize> {
        self.insns.binary_search_by_key(&addr, |i| i.addr).ok()
    }

    /// The instructions, in address order.
    pub fn insns(&self) -> &[MachineInsn] {
        &self.insns
    }

    /// Size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob() -> CodeBlob {
        CodeBlob::new(
            0x100,
            vec![
                MachineInsn {
                    addr: 0x100,
                    len: 2,
                    kind: MiKind::Other,
                },
                MachineInsn {
                    addr: 0x102,
                    len: 6,
                    kind: MiKind::CondBranch {
                        target: 0x100,
                        taken_means_bytecode_taken: true,
                    },
                },
                MachineInsn {
                    addr: 0x108,
                    len: 1,
                    kind: MiKind::Ret,
                },
            ],
        )
    }

    #[test]
    fn lookup_by_address() {
        let b = blob();
        assert!(b.contains(0x100));
        assert!(b.contains(0x108));
        assert!(!b.contains(0x109));
        assert_eq!(b.insn_at(0x102).unwrap().len, 6);
        assert!(b.insn_at(0x101).is_none(), "mid-instruction address");
        assert_eq!(b.index_of(0x108), Some(2));
        assert_eq!(b.byte_len(), 9);
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn rejects_gaps() {
        CodeBlob::new(
            0x100,
            vec![
                MachineInsn {
                    addr: 0x100,
                    len: 2,
                    kind: MiKind::Other,
                },
                MachineInsn {
                    addr: 0x104,
                    len: 2,
                    kind: MiKind::Ret,
                },
            ],
        );
    }

    #[test]
    fn kind_classification() {
        assert!(MiKind::Ret.emits_tip());
        assert!(MiKind::IndirectJump.emits_tip());
        assert!(!MiKind::Jump { target: 0 }.emits_tip());
        assert!(!MiKind::Call { target: 0 }.emits_tip());
        assert!(MiKind::Jump { target: 0 }.is_control());
        assert!(!MiKind::Other.is_control());
    }
}
