//! The cycle cost model.
//!
//! Everything the evaluation measures as "runtime overhead" (Table 2)
//! comes from this model: interpreted bytecodes pay the dispatch tax,
//! JITed bytecodes are cheap, instrumentation probes pay per-probe costs,
//! PT tracing adds a small per-packet-byte stall, and sampling profilers
//! pay per-sample interrupt costs. The constants are calibrated so the
//! relative overheads land in the paper's ranges; absolute cycle counts
//! are meaningless by design.

use jportal_bytecode::ProbeKind;

/// Cost constants, in simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of interpreting one bytecode (template dispatch + body).
    pub interp_per_bytecode: u64,
    /// Cost of one JIT-compiled bytecode.
    pub jit_per_bytecode: u64,
    /// Extra cost of a method call/return pair (frame setup).
    pub call_overhead: u64,
    /// PT trace-write stall, as a fraction of a cycle per hardware event:
    /// `pt_stall_numer / pt_stall_denom` cycles (accumulated exactly via a
    /// residual). Only charged while tracing is enabled.
    pub pt_stall_numer: u64,
    /// Denominator of the per-event PT stall fraction.
    pub pt_stall_denom: u64,
    /// One-time cost of exporting a compiled method's metadata
    /// (JPortal's online collection, §6).
    pub metadata_export_per_insn: u64,
    /// Cost of a counter-increment probe (statement coverage).
    pub probe_count: u64,
    /// Cost of a path-register add/set.
    pub probe_path_arith: u64,
    /// Cost of a path-table commit (hash update).
    pub probe_path_commit: u64,
    /// Cost per control-flow event byte written by CF tracing.
    pub probe_event_per_byte: u64,
    /// Cost of a method-timer probe (timestamp read + record).
    pub probe_method_timer: u64,
    /// Cost of taking one profiling sample (stack walk + record).
    pub sample_cost: u64,
    /// Cost of JIT-compiling one bytecode (C1) — charged when compiling.
    pub compile_per_bytecode_c1: u64,
    /// Cost of JIT-compiling one bytecode (C2).
    pub compile_per_bytecode_c2: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            interp_per_bytecode: 20,
            jit_per_bytecode: 2,
            call_overhead: 12,
            pt_stall_numer: 1,
            pt_stall_denom: 3,
            metadata_export_per_insn: 2,
            probe_count: 8,
            probe_path_arith: 4,
            probe_path_commit: 20,
            probe_event_per_byte: 25,
            probe_method_timer: 120,
            sample_cost: 2200,
            compile_per_bytecode_c1: 150,
            compile_per_bytecode_c2: 600,
        }
    }
}

impl CostModel {
    /// Cost of executing one probe.
    pub fn probe_cost(&self, kind: ProbeKind) -> u64 {
        match kind {
            ProbeKind::Count(_) => self.probe_count,
            ProbeKind::PathSet(_) | ProbeKind::PathAdd(_) => self.probe_path_arith,
            ProbeKind::PathCommit(_) => self.probe_path_commit,
            ProbeKind::Event(bytes) => self.probe_event_per_byte * u64::from(bytes),
            ProbeKind::MethodTimer(_) => self.probe_method_timer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_order_the_baselines() {
        let c = CostModel::default();
        // CF event tracing must dominate path profiling, which dominates
        // statement coverage, mirroring the paper's Table 2 ordering.
        assert!(c.probe_cost(ProbeKind::Event(8)) > c.probe_cost(ProbeKind::PathCommit(0)));
        assert!(c.probe_cost(ProbeKind::PathCommit(0)) > c.probe_cost(ProbeKind::Count(0)));
        // JIT code is much cheaper than interpretation.
        assert!(c.interp_per_bytecode >= 5 * c.jit_per_bytecode);
    }

    #[test]
    fn probe_costs_scale_with_event_size() {
        let c = CostModel::default();
        assert_eq!(
            c.probe_cost(ProbeKind::Event(16)),
            2 * c.probe_cost(ProbeKind::Event(8))
        );
    }
}
