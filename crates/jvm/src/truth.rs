//! Ground-truth recording.
//!
//! The paper measures JPortal's accuracy against control-flow profiles
//! collected by Ball–Larus instrumentation (§7.2). The simulation can do
//! better: the executor records the *exact* executed bytecode trace per
//! thread, plus per-method time attribution for the hot-method experiment
//! (Table 4). Accuracy scoring in `jportal-core` compares reconstructions
//! against these.

use jportal_bytecode::{Bci, MethodId};
use std::collections::HashMap;

use jportal_ipt::ThreadId;

/// One executed bytecode with its timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruthEvent {
    /// Method executed.
    pub method: MethodId,
    /// Bytecode index executed.
    pub bci: Bci,
    /// Simulated time at execution.
    pub ts: u64,
}

/// Per-thread ground truth plus aggregate statistics.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Executed bytecode trace per thread.
    traces: HashMap<ThreadId, Vec<TruthEvent>>,
    /// Cycles attributed to each method (self time).
    method_cycles: HashMap<MethodId, u64>,
    /// Invocation counts per method.
    invocations: HashMap<MethodId, u64>,
}

impl GroundTruth {
    /// Creates an empty recorder.
    pub fn new() -> GroundTruth {
        GroundTruth::default()
    }

    /// Records one executed bytecode.
    pub fn record(&mut self, thread: ThreadId, method: MethodId, bci: Bci, ts: u64, cost: u64) {
        self.traces
            .entry(thread)
            .or_default()
            .push(TruthEvent { method, bci, ts });
        *self.method_cycles.entry(method).or_insert(0) += cost;
    }

    /// Records a method invocation.
    pub fn record_invocation(&mut self, method: MethodId) {
        *self.invocations.entry(method).or_insert(0) += 1;
    }

    /// Records only the aggregate statistics of an executed bytecode
    /// (overhead-measurement runs skip the full trace to save memory).
    pub fn record_stats_only(&mut self, method: MethodId, cost: u64) {
        *self.method_cycles.entry(method).or_insert(0) += cost;
    }

    /// The executed trace of one thread.
    pub fn trace(&self, thread: ThreadId) -> &[TruthEvent] {
        self.traces.get(&thread).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All threads that executed anything.
    pub fn threads(&self) -> Vec<ThreadId> {
        let mut v: Vec<ThreadId> = self.traces.keys().copied().collect();
        v.sort();
        v
    }

    /// Total executed bytecodes over all threads.
    pub fn total_events(&self) -> u64 {
        self.traces.values().map(|t| t.len() as u64).sum()
    }

    /// Self-cycles per method.
    pub fn method_cycles(&self) -> &HashMap<MethodId, u64> {
        &self.method_cycles
    }

    /// Invocation counts.
    pub fn invocations(&self) -> &HashMap<MethodId, u64> {
        &self.invocations
    }

    /// The `n` hottest methods by self-cycles, hottest first — the
    /// ground truth of the paper's Table 4.
    pub fn hottest_methods(&self, n: usize) -> Vec<MethodId> {
        let mut v: Vec<(MethodId, u64)> =
            self.method_cycles.iter().map(|(&m, &c)| (m, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v.into_iter().map(|(m, _)| m).collect()
    }

    /// Per-`(method, bci)` execution counts (statement coverage ground
    /// truth).
    pub fn statement_counts(&self) -> HashMap<(MethodId, Bci), u64> {
        let mut out = HashMap::new();
        for trace in self.traces.values() {
            for e in trace {
                *out.entry((e.method, e.bci)).or_insert(0) += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_ranks() {
        let mut gt = GroundTruth::new();
        let t = ThreadId(0);
        gt.record(t, MethodId(1), Bci(0), 10, 5);
        gt.record(t, MethodId(1), Bci(1), 15, 5);
        gt.record(t, MethodId(2), Bci(0), 20, 100);
        gt.record_invocation(MethodId(1));
        assert_eq!(gt.trace(t).len(), 3);
        assert_eq!(gt.total_events(), 3);
        assert_eq!(gt.hottest_methods(1), vec![MethodId(2)]);
        assert_eq!(gt.hottest_methods(2), vec![MethodId(2), MethodId(1)]);
        assert_eq!(gt.invocations().get(&MethodId(1)), Some(&1));
        assert_eq!(gt.threads(), vec![t]);
    }

    #[test]
    fn statement_counts_aggregate_threads() {
        let mut gt = GroundTruth::new();
        gt.record(ThreadId(0), MethodId(0), Bci(4), 1, 1);
        gt.record(ThreadId(1), MethodId(0), Bci(4), 2, 1);
        let counts = gt.statement_counts();
        assert_eq!(counts.get(&(MethodId(0), Bci(4))), Some(&2));
    }

    #[test]
    fn hottest_ties_break_deterministically() {
        let mut gt = GroundTruth::new();
        gt.record(ThreadId(0), MethodId(5), Bci(0), 0, 10);
        gt.record(ThreadId(0), MethodId(3), Bci(0), 0, 10);
        assert_eq!(gt.hottest_methods(2), vec![MethodId(3), MethodId(5)]);
    }
}
