//! JIT debug information (§3.2).
//!
//! The JIT records, at each step of compilation, the mapping from machine
//! PCs back to bytecode — `pc → method@bci`, with the full inline path
//! when the instruction comes from an inlined callee (§6 "Dealing with
//! Inlined Code"). HotSpot maintains this for deoptimization and exception
//! reporting; JPortal repurposes it for decoding.
//!
//! Debug-info *quality* is a first-class knob: `degrade(fraction, seed)`
//! drops records the way aggressive optimization blurs real mappings,
//! which is one of the paper's two residual inaccuracy sources
//! (Figure 7 discussion).

use jportal_bytecode::{Bci, MethodId};

/// One inline frame in a compiled method's inline tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InlineFrame {
    /// Parent frame id (`None` for the root = the compiled method itself).
    pub parent: Option<u32>,
    /// The (inlined) method.
    pub method: MethodId,
    /// Call-site bci in the parent at which this method was inlined.
    pub caller_bci: Bci,
}

/// One debug record: the bytecode location a machine PC was compiled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DebugRecord {
    /// Machine PC this record anchors at.
    pub pc: u64,
    /// Inline frame the PC belongs to (index into the inline tree;
    /// 0 is the root method).
    pub inline_id: u32,
    /// Bytecode index within that frame's method.
    pub bci: Bci,
}

/// The per-blob debug table: sorted records plus the inline tree.
///
/// # Examples
///
/// ```
/// use jportal_bytecode::{Bci, MethodId};
/// use jportal_jvm::{DebugRecord, DebugTable};
///
/// let mut t = DebugTable::new(MethodId(3));
/// t.push(DebugRecord { pc: 0x100, inline_id: 0, bci: Bci(0) });
/// t.push(DebugRecord { pc: 0x108, inline_id: 0, bci: Bci(1) });
/// let rec = t.lookup(0x10A).unwrap();
/// assert_eq!(rec.bci, Bci(1));
/// assert_eq!(t.method_of(rec.inline_id), MethodId(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DebugTable {
    records: Vec<DebugRecord>,
    inline_tree: Vec<InlineFrame>,
}

impl DebugTable {
    /// Creates a table whose root frame is `root_method`.
    pub fn new(root_method: MethodId) -> DebugTable {
        DebugTable {
            records: Vec::new(),
            inline_tree: vec![InlineFrame {
                parent: None,
                method: root_method,
                caller_bci: Bci(0),
            }],
        }
    }

    /// Adds an inline frame; returns its id.
    pub fn add_inline_frame(&mut self, parent: u32, method: MethodId, caller_bci: Bci) -> u32 {
        self.inline_tree.push(InlineFrame {
            parent: Some(parent),
            method,
            caller_bci,
        });
        (self.inline_tree.len() - 1) as u32
    }

    /// Appends a record. Records must be pushed in ascending `pc` order.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is not ≥ the last record's pc.
    pub fn push(&mut self, rec: DebugRecord) {
        if let Some(last) = self.records.last() {
            assert!(rec.pc >= last.pc, "debug records must be pc-sorted");
        }
        self.records.push(rec);
    }

    /// The record governing `pc`: the one with the greatest anchor ≤ `pc`.
    pub fn lookup(&self, pc: u64) -> Option<&DebugRecord> {
        match self.records.binary_search_by_key(&pc, |r| r.pc) {
            Ok(i) => Some(&self.records[i]),
            Err(0) => None,
            Err(i) => Some(&self.records[i - 1]),
        }
    }

    /// The record anchored exactly at `pc`, if any.
    pub fn at_exact(&self, pc: u64) -> Option<&DebugRecord> {
        self.records
            .binary_search_by_key(&pc, |r| r.pc)
            .ok()
            .map(|i| &self.records[i])
    }

    /// The method of an inline frame.
    pub fn method_of(&self, inline_id: u32) -> MethodId {
        self.inline_tree[inline_id as usize].method
    }

    /// The inline frame with the given id.
    pub fn frame(&self, inline_id: u32) -> &InlineFrame {
        &self.inline_tree[inline_id as usize]
    }

    /// The inline tree (index 0 is the root method).
    pub fn inline_tree(&self) -> &[InlineFrame] {
        &self.inline_tree
    }

    /// The full inline path of a frame, root first:
    /// `[(root, caller_bci₁), …, (leaf_method, _)]` — the chain of methods
    /// the paper recovers via "the inlined method's signature".
    pub fn inline_path(&self, inline_id: u32) -> Vec<(MethodId, Bci)> {
        let mut path = Vec::new();
        let mut cur = Some(inline_id);
        while let Some(id) = cur {
            let f = &self.inline_tree[id as usize];
            path.push((f.method, f.caller_bci));
            cur = f.parent;
        }
        path.reverse();
        path
    }

    /// All records.
    pub fn records(&self) -> &[DebugRecord] {
        &self.records
    }

    /// First pc mapped to `(inline_id, bci)`, if any (reverse lookup used
    /// for exception-handler entry addresses).
    pub fn pc_of(&self, inline_id: u32, bci: Bci) -> Option<u64> {
        self.records
            .iter()
            .find(|r| r.inline_id == inline_id && r.bci == bci)
            .map(|r| r.pc)
    }

    /// Degrades the table by dropping roughly `fraction` of the records
    /// (deterministically from `seed`), keeping the first record. Models
    /// the imprecision that loop transformations and aggressive inlining
    /// cause in real debug metadata.
    pub fn degrade(&mut self, fraction: f64, seed: u64) {
        if fraction <= 0.0 {
            return;
        }
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let threshold = (fraction.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        let mut first = true;
        self.records.retain(|_| {
            if first {
                first = false;
                return true;
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state >= threshold
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> DebugTable {
        let mut t = DebugTable::new(MethodId(1));
        let callee = t.add_inline_frame(0, MethodId(2), Bci(5));
        t.push(DebugRecord {
            pc: 0x100,
            inline_id: 0,
            bci: Bci(0),
        });
        t.push(DebugRecord {
            pc: 0x110,
            inline_id: 0,
            bci: Bci(5),
        });
        t.push(DebugRecord {
            pc: 0x118,
            inline_id: callee,
            bci: Bci(0),
        });
        t.push(DebugRecord {
            pc: 0x120,
            inline_id: callee,
            bci: Bci(1),
        });
        t.push(DebugRecord {
            pc: 0x128,
            inline_id: 0,
            bci: Bci(6),
        });
        t
    }

    #[test]
    fn lookup_uses_preceding_anchor() {
        let t = table();
        assert!(t.lookup(0xFF).is_none());
        assert_eq!(t.lookup(0x100).unwrap().bci, Bci(0));
        assert_eq!(t.lookup(0x10C).unwrap().bci, Bci(0));
        assert_eq!(t.lookup(0x119).unwrap().inline_id, 1);
        assert_eq!(t.at_exact(0x118).unwrap().bci, Bci(0));
        assert!(t.at_exact(0x119).is_none());
    }

    #[test]
    fn inline_paths_root_first() {
        let t = table();
        assert_eq!(t.inline_path(0), vec![(MethodId(1), Bci(0))]);
        let p = t.inline_path(1);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].0, MethodId(1));
        assert_eq!(p[1], (MethodId(2), Bci(5)));
        assert_eq!(t.method_of(1), MethodId(2));
    }

    #[test]
    fn reverse_lookup_for_handlers() {
        let t = table();
        assert_eq!(t.pc_of(0, Bci(6)), Some(0x128));
        assert_eq!(t.pc_of(1, Bci(1)), Some(0x120));
        assert_eq!(t.pc_of(0, Bci(99)), None);
    }

    #[test]
    fn degrade_drops_records_deterministically() {
        let mut a = table();
        let mut b = table();
        a.degrade(0.5, 7);
        b.degrade(0.5, 7);
        assert_eq!(a.records(), b.records());
        assert!(a.records().len() < table().records().len());
        assert_eq!(a.records()[0].pc, 0x100, "first record survives");
        let mut c = table();
        c.degrade(0.0, 7);
        assert_eq!(c.records().len(), table().records().len());
    }

    #[test]
    #[should_panic(expected = "pc-sorted")]
    fn rejects_unsorted_pushes() {
        let mut t = DebugTable::new(MethodId(0));
        t.push(DebugRecord {
            pc: 0x10,
            inline_id: 0,
            bci: Bci(0),
        });
        t.push(DebugRecord {
            pc: 0x08,
            inline_id: 0,
            bci: Bci(1),
        });
    }
}
