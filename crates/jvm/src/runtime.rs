//! The whole-JVM driver: threads, scheduler, tiered compilation, tracing.
//!
//! [`Jvm::run`] executes a program's threads on a set of simulated cores
//! with round-robin time slices, feeding each core's hardware events into
//! its PT encoder (when tracing is enabled), recording thread-switch
//! sideband records, draining trace buffers at a finite export rate and
//! driving the tiered-compilation policy (interpret → C1 → C2). The
//! result bundles everything JPortal's offline pipeline needs — per-core
//! traces, sideband, machine-code metadata — plus the ground truth and
//! overhead statistics the evaluation compares against.

use std::collections::{HashMap, VecDeque};

use jportal_bytecode::{MethodId, Program};
use jportal_ipt::{CollectedTraces, CoreId, EncoderConfig, PtSession, ThreadId};

use crate::clock::CostModel;
use crate::code_cache::{CodeCache, MetadataArchive, CODE_END, TEMPLATE_BASE};
use crate::exec::{EventSink, ExecError, Executor, NullSink, ThreadState};
use crate::jit::{compile, JitConfig, JitTier};
use crate::probes::ProbeRuntime;
use crate::truth::GroundTruth;

/// One thread to run: an entry method and its integer arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSpec {
    /// Entry method of the thread.
    pub method: MethodId,
    /// Integer arguments placed in the first locals.
    pub args: Vec<i64>,
}

/// Sampling-profiler configuration (xprof / JProfiler analogs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Cycles between samples (the paper uses 10 ms).
    pub period: u64,
    /// Cost charged per sample (stack walk + record).
    pub cost: u64,
}

/// JVM configuration.
#[derive(Debug, Clone)]
pub struct JvmConfig {
    /// Number of simulated cores.
    pub cores: usize,
    /// Whether PT tracing is on (off = the overhead baseline).
    pub tracing: bool,
    /// Per-core PT buffer capacity in bytes (the paper's 64/128/256 MB
    /// knob, scaled).
    pub pt_buffer_capacity: usize,
    /// TSC packet cadence in cycles.
    pub tsc_period: u64,
    /// PSB cadence in buffer bytes.
    pub psb_period: usize,
    /// Exporter rate: bytes drained per 1000 cycles per core.
    pub drain_bytes_per_kilocycle: u64,
    /// Invocations before C1 compilation.
    pub c1_threshold: u64,
    /// Invocations before C2 compilation.
    pub c2_threshold: u64,
    /// JIT parameters.
    pub jit: JitConfig,
    /// Live code-cache capacity in bytes.
    pub code_cache_capacity: u64,
    /// Scheduler time slice in cycles.
    pub quantum: u64,
    /// Optional sampling profiler.
    pub sampler: Option<SamplerConfig>,
    /// Cost model.
    pub cost: CostModel,
    /// Per-thread step limit.
    pub step_limit: u64,
    /// Record full ground-truth traces (disable for overhead-only runs).
    pub record_truth_trace: bool,
}

impl Default for JvmConfig {
    fn default() -> JvmConfig {
        JvmConfig {
            cores: 1,
            tracing: true,
            pt_buffer_capacity: 128 * 1024,
            tsc_period: 512,
            psb_period: 8 * 1024,
            drain_bytes_per_kilocycle: 40,
            c1_threshold: 8,
            c2_threshold: 64,
            jit: JitConfig::default(),
            code_cache_capacity: 512 * 1024,
            quantum: 4096,
            sampler: None,
            cost: CostModel::default(),
            step_limit: 200_000_000,
            record_truth_trace: true,
        }
    }
}

/// Everything produced by one JVM run.
#[derive(Debug)]
pub struct RunResult {
    /// PT traces + sideband (present when tracing was enabled).
    pub traces: Option<CollectedTraces>,
    /// Exported machine-code metadata.
    pub archive: MetadataArchive,
    /// Ground truth.
    pub truth: GroundTruth,
    /// Instrumentation-probe results.
    pub probes: ProbeRuntime,
    /// Wall time: the maximum core clock at the end.
    pub wall_cycles: u64,
    /// Sampling-profiler results: samples per method.
    pub samples: HashMap<MethodId, u64>,
    /// Threads that failed, with their errors.
    pub thread_errors: Vec<(ThreadId, ExecError)>,
    /// Number of JIT compilations performed.
    pub compilations: usize,
}

impl RunResult {
    /// The `n` hottest methods by sampling (Table 4's sampled profilers).
    pub fn hottest_sampled(&self, n: usize) -> Vec<MethodId> {
        let mut v: Vec<(MethodId, u64)> = self.samples.iter().map(|(&m, &c)| (m, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v.into_iter().map(|(m, _)| m).collect()
    }
}

/// The simulated JVM.
#[derive(Debug, Clone, Default)]
pub struct Jvm {
    /// Configuration used by [`Jvm::run`].
    pub config: JvmConfig,
    /// Live telemetry plane attached to the tracing session (if any):
    /// per-core ring gauges update on every drain and drains offer the
    /// plane sim-time ticks. `None` leaves the drain path untouched.
    telemetry: Option<std::sync::Arc<jportal_obs::TelemetryPlane>>,
}

impl Jvm {
    /// Creates a JVM with the given configuration.
    pub fn new(config: JvmConfig) -> Jvm {
        Jvm {
            config,
            telemetry: None,
        }
    }

    /// Attaches a live telemetry plane (builder-style); see
    /// [`PtSession::set_telemetry`] for what the collection side feeds
    /// it. Typically the plane comes from a `JPortal` built with
    /// `telemetry: Some(..)`, so collection and analysis publish into
    /// the same scrapeable series.
    pub fn with_telemetry(mut self, plane: std::sync::Arc<jportal_obs::TelemetryPlane>) -> Jvm {
        self.telemetry = Some(plane);
        self
    }

    /// Runs the program's entry method as a single thread.
    pub fn run(&self, program: &Program) -> RunResult {
        self.run_threads(
            program,
            &[ThreadSpec {
                method: program.entry(),
                args: Vec::new(),
            }],
        )
    }

    /// Runs the given threads to completion.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty or a spec's argument count mismatches
    /// its method.
    pub fn run_threads(&self, program: &Program, threads: &[ThreadSpec]) -> RunResult {
        assert!(!threads.is_empty(), "at least one thread");
        let cfg = &self.config;
        let mut cache = CodeCache::new(cfg.code_cache_capacity);
        let mut exec = Executor::new(program);
        exec.cost = cfg.cost;
        exec.step_limit = cfg.step_limit;
        exec.record_truth_trace = cfg.record_truth_trace;
        exec.charge_pt_stall = cfg.tracing;

        let mut session = cfg.tracing.then(|| {
            let enc = EncoderConfig {
                buffer_capacity: cfg.pt_buffer_capacity,
                filter: Some((TEMPLATE_BASE, CODE_END)),
                tsc_period: cfg.tsc_period,
                psb_period: cfg.psb_period,
            };
            let mut s = PtSession::new(cfg.cores, enc);
            if let Some(plane) = &self.telemetry {
                s.set_telemetry(std::sync::Arc::clone(plane));
            }
            s
        });

        let mut states: Vec<ThreadState> = threads
            .iter()
            .enumerate()
            .map(|(i, spec)| exec.spawn(ThreadId(i as u32), spec.method, &spec.args, &cache))
            .collect();

        let mut clocks = vec![0u64; cfg.cores];
        let mut runqueue: VecDeque<usize> = (0..states.len()).collect();
        let mut on_core: Vec<Option<ThreadId>> = vec![None; cfg.cores];
        let mut thread_last_ts = vec![0u64; states.len()];
        let mut invocations: HashMap<MethodId, u64> = HashMap::new();
        let mut tier_of: HashMap<MethodId, JitTier> = HashMap::new();
        let mut compilations = 0usize;
        let mut samples: HashMap<MethodId, u64> = HashMap::new();
        let mut next_sample = vec![cfg.sampler.map(|s| s.period).unwrap_or(u64::MAX); cfg.cores];

        // Seed invocation counters with the spawned entries.
        for spec in threads {
            *invocations.entry(spec.method).or_insert(0) += 1;
        }

        'outer: loop {
            let mut progressed = false;
            for core in 0..cfg.cores {
                let Some(tid) = runqueue.pop_front() else {
                    break;
                };
                if !states[tid].is_runnable() {
                    continue;
                }
                progressed = true;
                let thread_id = states[tid].id;
                clocks[core] = clocks[core].max(thread_last_ts[tid]);
                if on_core[core] != Some(thread_id) {
                    if let Some(s) = session.as_mut() {
                        if let Some(prev) = on_core[core] {
                            s.record_switch_out(CoreId(core as u32), prev, clocks[core]);
                        }
                        s.record_switch_in(CoreId(core as u32), thread_id, clocks[core]);
                    }
                    on_core[core] = Some(thread_id);
                }

                let slice_end = clocks[core] + cfg.quantum;
                let mut pending_compiles: Vec<MethodId> = Vec::new();
                while clocks[core] < slice_end && states[tid].is_runnable() {
                    let now = clocks[core];
                    let result = match session.as_mut() {
                        Some(s) => {
                            let enc = s.core_mut(CoreId(core as u32));
                            enc.set_time(now);
                            let mut sink = EncoderSink { enc };
                            exec.step(&mut states[tid], &cache, &mut sink, now)
                        }
                        None => exec.step(&mut states[tid], &cache, &mut NullSink, now),
                    };
                    clocks[core] += result.cost.max(1);

                    if let Some(m) = result.invoked {
                        let count = invocations.entry(m).or_insert(0);
                        *count += 1;
                        let tier = tier_of.get(&m).copied();
                        let want = if *count >= cfg.c2_threshold && tier != Some(JitTier::C2) {
                            Some(JitTier::C2)
                        } else if *count >= cfg.c1_threshold && tier.is_none() {
                            Some(JitTier::C1)
                        } else {
                            None
                        };
                        if want.is_some() {
                            pending_compiles.push(m);
                        }
                    }

                    // Sampling profiler: one sample when due, then re-arm
                    // one period after the sample *completes* (a sampler
                    // whose cost exceeds its period degrades gracefully
                    // instead of snowballing).
                    if let Some(s) = cfg.sampler {
                        if clocks[core] >= next_sample[core] {
                            if states[tid].is_runnable() {
                                let m = states[tid].frame().method;
                                *samples.entry(m).or_insert(0) += 1;
                            }
                            clocks[core] += s.cost;
                            next_sample[core] = clocks[core] + s.period;
                        }
                    }
                }

                // Compile outside the stepping loop (needs &mut cache).
                for m in pending_compiles {
                    let count = invocations.get(&m).copied().unwrap_or(0);
                    let tier = tier_of.get(&m).copied();
                    let want = if count >= cfg.c2_threshold && tier != Some(JitTier::C2) {
                        JitTier::C2
                    } else if count >= cfg.c1_threshold && tier.is_none() {
                        JitTier::C1
                    } else {
                        continue;
                    };
                    let cm = compile(program, m, want, 0, &cfg.jit);
                    let code_len = program.method(m).code.len() as u64;
                    let compile_cost = match want {
                        JitTier::C1 => cfg.cost.compile_per_bytecode_c1 * code_len,
                        JitTier::C2 => cfg.cost.compile_per_bytecode_c2 * code_len,
                    };
                    // Compilation runs on a background compiler thread in
                    // real JVMs; charge a fraction to the app core.
                    clocks[core] += compile_cost / 8;
                    if cfg.tracing {
                        clocks[core] += cm.insn_count() as u64 * cfg.cost.metadata_export_per_insn;
                    }
                    cache.install(cm, clocks[core]);
                    cache.touch(m, clocks[core]);
                    tier_of.insert(m, want);
                    compilations += 1;
                }
                cache.touch(states[tid].frame_method_or_entry(), clocks[core]);

                // Exporter drains proportionally to elapsed time.
                if let Some(s) = session.as_mut() {
                    let drained = cfg.quantum * cfg.drain_bytes_per_kilocycle / 1000;
                    s.drain_core(CoreId(core as u32), drained as usize, clocks[core]);
                }

                thread_last_ts[tid] = clocks[core];
                if states[tid].is_runnable() {
                    runqueue.push_back(tid);
                }
            }
            if !progressed && runqueue.is_empty() {
                break 'outer;
            }
            if !progressed {
                // Only non-runnable threads remained in this pass.
                break;
            }
        }

        let wall = clocks.iter().copied().max().unwrap_or(0);
        let thread_errors = states
            .iter()
            .filter_map(|s| match &s.status {
                crate::exec::ThreadStatus::Failed(e) => Some((s.id, e.clone())),
                _ => None,
            })
            .collect();

        RunResult {
            traces: session.map(|s| s.finish(wall)),
            archive: cache.into_archive(),
            truth: std::mem::take(&mut exec.truth),
            probes: std::mem::take(&mut exec.probes),
            wall_cycles: wall,
            samples,
            thread_errors,
            compilations,
        }
    }
}

struct EncoderSink<'a> {
    enc: &'a mut jportal_ipt::PtEncoder,
}

impl EventSink for EncoderSink<'_> {
    fn emit(&mut self, ev: jportal_ipt::HwEvent) {
        self.enc.event(ev);
    }
}

impl ThreadState {
    /// Current method (or the entry for accounting when finished).
    fn frame_method_or_entry(&self) -> MethodId {
        self.frames.last().map(|f| f.method).unwrap_or(MethodId(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{Bci, CmpKind, Instruction as I};
    use jportal_ipt::{decode_packets, Packet};

    /// main loops `n` times calling a small helper.
    fn loopy_program(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut h = pb.method(c, "helper", 1, true);
        let odd = h.label();
        h.emit(I::Iload(0));
        h.emit(I::Iconst(2));
        h.emit(I::Irem);
        h.branch_if(CmpKind::Ne, odd);
        h.emit(I::Iconst(10));
        h.emit(I::Ireturn);
        h.bind(odd);
        h.emit(I::Iconst(20));
        h.emit(I::Ireturn);
        let helper = h.finish();
        let mut m = pb.method(c, "main", 0, false);
        let head = m.label();
        let done = m.label();
        m.emit(I::Iconst(n));
        m.emit(I::Istore(0));
        m.bind(head);
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Le, done);
        m.emit(I::Iload(0));
        m.emit(I::InvokeStatic(helper));
        m.emit(I::Pop);
        m.emit(I::Iinc(0, -1));
        m.jump(head);
        m.bind(done);
        m.emit(I::Return);
        let main = m.finish();
        pb.finish_with_entry(main).unwrap()
    }

    #[test]
    fn runs_to_completion_and_records_truth() {
        let p = loopy_program(5);
        let jvm = Jvm::new(JvmConfig {
            tracing: false,
            ..JvmConfig::default()
        });
        let r = jvm.run(&p);
        assert!(r.thread_errors.is_empty());
        assert!(r.truth.total_events() > 5 * 8);
        assert!(r.wall_cycles > 0);
        assert!(r.traces.is_none());
        // helper invoked 5 times + main once.
        assert_eq!(r.truth.invocations().get(&MethodId(0)), Some(&5));
    }

    #[test]
    fn tracing_produces_decodable_packets() {
        let p = loopy_program(4);
        let jvm = Jvm::new(JvmConfig {
            c1_threshold: u64::MAX, // stay interpreted
            c2_threshold: u64::MAX,
            ..JvmConfig::default()
        });
        let r = jvm.run(&p);
        let traces = r.traces.expect("tracing enabled");
        let packets = decode_packets(&traces.per_core[0].bytes);
        assert!(!packets.is_empty());
        // Must contain a PGE (thread start), TIPs into templates, and TNTs.
        assert!(packets
            .iter()
            .any(|tp| matches!(tp.packet, Packet::TipPge { .. })));
        let tips = packets
            .iter()
            .filter(|tp| matches!(tp.packet, Packet::Tip { .. }))
            .count();
        assert!(tips > 20, "interpreted dispatch TIPs, got {tips}");
        assert!(packets
            .iter()
            .any(|tp| matches!(tp.packet, Packet::Tnt { .. })));
        // All interpreted TIPs land in the template region.
        for tp in &packets {
            if let Packet::Tip { ip, .. } = tp.packet {
                assert!(
                    (TEMPLATE_BASE..CODE_END).contains(&ip),
                    "TIP {ip:#x} outside the code cache"
                );
            }
        }
    }

    #[test]
    fn hot_methods_get_compiled_and_called_via_tip() {
        let p = loopy_program(40);
        let jvm = Jvm::new(JvmConfig {
            c1_threshold: 4,
            c2_threshold: 16,
            ..JvmConfig::default()
        });
        let r = jvm.run(&p);
        assert!(r.compilations >= 2, "helper should reach C1 then C2");
        assert!(!r.archive.blobs.is_empty());
        // Ground truth is unaffected by mode switches.
        assert_eq!(r.truth.invocations().get(&MethodId(0)), Some(&40));
        assert!(r.thread_errors.is_empty());
    }

    #[test]
    fn tracing_overhead_is_positive_but_small() {
        let p = loopy_program(60);
        let base = Jvm::new(JvmConfig {
            tracing: false,
            record_truth_trace: false,
            ..JvmConfig::default()
        })
        .run(&p);
        let traced = Jvm::new(JvmConfig {
            tracing: true,
            record_truth_trace: false,
            ..JvmConfig::default()
        })
        .run(&p);
        assert!(traced.wall_cycles > base.wall_cycles);
        let slowdown = traced.wall_cycles as f64 / base.wall_cycles as f64;
        assert!(
            slowdown < 1.6,
            "hardware tracing should be cheap, got {slowdown:.2}x"
        );
    }

    #[test]
    fn multi_threaded_runs_record_switches() {
        let p = loopy_program(10);
        let jvm = Jvm::new(JvmConfig {
            cores: 2,
            ..JvmConfig::default()
        });
        let main = p.entry();
        let r = jvm.run_threads(
            &p,
            &[
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
            ],
        );
        assert!(r.thread_errors.is_empty());
        let traces = r.traces.unwrap();
        let switches = traces
            .sideband
            .iter()
            .filter(|s| matches!(s, jportal_ipt::SidebandRecord::SwitchIn { .. }))
            .count();
        assert!(switches >= 3, "each thread scheduled at least once");
        assert_eq!(r.truth.threads().len(), 3);
    }

    #[test]
    fn sampler_collects_samples_and_costs_time() {
        let p = loopy_program(200);
        let no_sampler = Jvm::new(JvmConfig {
            tracing: false,
            record_truth_trace: false,
            ..JvmConfig::default()
        })
        .run(&p);
        let sampled = Jvm::new(JvmConfig {
            tracing: false,
            record_truth_trace: false,
            sampler: Some(SamplerConfig {
                period: 5000,
                cost: 400,
            }),
            ..JvmConfig::default()
        })
        .run(&p);
        let total: u64 = sampled.samples.values().sum();
        assert!(total > 0, "sampler must fire");
        assert!(sampled.wall_cycles > no_sampler.wall_cycles);
    }

    #[test]
    fn uncaught_exception_fails_thread() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::Iconst(1));
        m.emit(I::Iconst(0));
        m.emit(I::Idiv);
        m.emit(I::Pop);
        m.emit(I::Return);
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let r = Jvm::new(JvmConfig::default()).run(&p);
        assert_eq!(r.thread_errors.len(), 1);
        assert!(matches!(
            r.thread_errors[0].1,
            ExecError::UncaughtException { class: None }
        ));
    }

    #[test]
    fn caught_exception_continues_at_handler() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let handler = m.label();
        let start = m.here();
        m.emit(I::Iconst(1));
        m.emit(I::Iconst(0));
        m.emit(I::Idiv);
        m.emit(I::Pop);
        let end = m.here();
        m.emit(I::Return);
        m.add_handler(start, end, handler, None);
        m.bind(handler);
        m.emit(I::Pop);
        m.emit(I::Return);
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let r = Jvm::new(JvmConfig::default()).run(&p);
        assert!(r.thread_errors.is_empty());
        // Truth trace must show the handler (bci 5) executing.
        let t = r.truth.trace(ThreadId(0));
        assert!(t.iter().any(|e| e.bci == Bci(5)));
        // And the trace must contain a FUP (async exception event).
        let traces = r.traces.unwrap();
        let packets = decode_packets(&traces.per_core[0].bytes);
        assert!(packets
            .iter()
            .any(|tp| matches!(tp.packet, Packet::Fup { .. })));
    }

    #[test]
    fn small_buffer_causes_data_loss() {
        let p = loopy_program(400);
        let r = Jvm::new(JvmConfig {
            pt_buffer_capacity: 256,
            drain_bytes_per_kilocycle: 2,
            c1_threshold: u64::MAX,
            c2_threshold: u64::MAX,
            ..JvmConfig::default()
        })
        .run(&p);
        let traces = r.traces.unwrap();
        assert!(
            !traces.per_core[0].losses.is_empty(),
            "tiny buffer must overflow"
        );
    }
}
