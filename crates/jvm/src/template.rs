//! The template interpreter's machine-code metadata (§3.1).
//!
//! During JVM initialization the template interpreter lays down one
//! machine-code template per bytecode operation at fixed addresses.
//! Executing a bytecode jumps (indirectly) to its template's entry — each
//! interpreted bytecode therefore produces exactly one TIP packet whose
//! target identifies the opcode, plus a TNT bit inside conditional-branch
//! templates (the paper's Figure 2).
//!
//! JPortal's interpreted-mode decoder needs exactly this table: the
//! address range of every template (Figure 2c).

use jportal_bytecode::OpKind;

use crate::machine::{CodeBlob, MachineInsn, MiKind};

/// Template metadata for one opcode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// The opcode this template interprets.
    pub op: OpKind,
    /// Entry address (dispatch targets land here).
    pub entry: u64,
    /// Address range `[start, end)` of the template's machine code.
    pub range: (u64, u64),
    /// Address of the internal conditional branch mirroring the bytecode
    /// branch decision (conditional templates only).
    pub cond_addr: Option<u64>,
    /// Address of the trailing dispatch jump (indirect).
    pub dispatch_addr: u64,
}

/// The full template table, as collected at JVM initialization.
///
/// # Examples
///
/// ```
/// use jportal_bytecode::OpKind;
/// use jportal_jvm::TemplateTable;
///
/// let table = TemplateTable::new(0x7f80_0000_0000);
/// let t = table.template(OpKind::Ifeq);
/// assert!(t.cond_addr.is_some());
/// assert_eq!(table.op_at(t.entry), Some(OpKind::Ifeq));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateTable {
    base: u64,
    end: u64,
    templates: Vec<Template>,
}

impl TemplateTable {
    /// Spacing between template entries; each template occupies a slice of
    /// this stride (templates have different lengths in reality; the
    /// stride keeps address arithmetic simple while ranges stay distinct).
    pub const STRIDE: u64 = 0x40;

    /// Lays the templates down starting at `base`.
    pub fn new(base: u64) -> TemplateTable {
        let mut templates = Vec::with_capacity(OpKind::ALL.len());
        for (i, &op) in OpKind::ALL.iter().enumerate() {
            let start = base + i as u64 * Self::STRIDE;
            let is_cond = matches!(
                op,
                OpKind::Ifeq
                    | OpKind::Ifne
                    | OpKind::Iflt
                    | OpKind::Ifge
                    | OpKind::Ifgt
                    | OpKind::Ifle
                    | OpKind::IfIcmpeq
                    | OpKind::IfIcmpne
                    | OpKind::IfIcmplt
                    | OpKind::IfIcmpge
                    | OpKind::IfIcmpgt
                    | OpKind::IfIcmple
                    | OpKind::Ifnull
            );
            // Template shape: a couple of Other insns, optionally the
            // mirrored conditional, then the indirect dispatch.
            let cond_addr = if is_cond { Some(start + 0x10) } else { None };
            let dispatch_addr = start + 0x30;
            templates.push(Template {
                op,
                entry: start,
                range: (start, start + Self::STRIDE),
                cond_addr,
                dispatch_addr,
            });
        }
        TemplateTable {
            base,
            end: base + OpKind::ALL.len() as u64 * Self::STRIDE,
            templates,
        }
    }

    /// The template for an opcode.
    pub fn template(&self, op: OpKind) -> &Template {
        &self.templates[op.index()]
    }

    /// The opcode whose template contains `addr`, if any.
    pub fn op_at(&self, addr: u64) -> Option<OpKind> {
        if addr < self.base || addr >= self.end {
            return None;
        }
        let idx = ((addr - self.base) / Self::STRIDE) as usize;
        OpKind::ALL.get(idx).copied()
    }

    /// Address range `[base, end)` covered by all templates.
    pub fn range(&self) -> (u64, u64) {
        (self.base, self.end)
    }

    /// All templates in table order.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// A walkable machine-code image of one template (for decoders that
    /// want to treat templates like any other blob).
    pub fn blob_of(&self, op: OpKind) -> CodeBlob {
        let t = self.template(op);
        let mut insns = Vec::new();
        let mut addr = t.entry;
        // Leading Others up to the conditional (if any).
        while addr < t.cond_addr.unwrap_or(t.dispatch_addr) {
            insns.push(MachineInsn {
                addr,
                len: 8,
                kind: MiKind::Other,
            });
            addr += 8;
        }
        if let Some(c) = t.cond_addr {
            insns.push(MachineInsn {
                addr: c,
                len: 8,
                kind: MiKind::CondBranch {
                    // Taken in the template skips ahead within it.
                    target: c + 16,
                    taken_means_bytecode_taken: true,
                },
            });
            addr = c + 8;
            while addr < t.dispatch_addr {
                insns.push(MachineInsn {
                    addr,
                    len: 8,
                    kind: MiKind::Other,
                });
                addr += 8;
            }
        }
        insns.push(MachineInsn {
            addr: t.dispatch_addr,
            len: 8,
            kind: MiKind::IndirectJump,
        });
        addr = t.dispatch_addr + 8;
        while addr < t.range.1 {
            insns.push(MachineInsn {
                addr,
                len: 8,
                kind: MiKind::Other,
            });
            addr += 8;
        }
        CodeBlob::new(t.entry, insns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_tile_the_range_disjointly() {
        let t = TemplateTable::new(0x7f00_0000_0000);
        let mut prev_end = t.range().0;
        for tpl in t.templates() {
            assert_eq!(tpl.range.0, prev_end);
            prev_end = tpl.range.1;
            assert!(tpl.entry >= tpl.range.0 && tpl.entry < tpl.range.1);
            assert!(tpl.dispatch_addr < tpl.range.1);
        }
        assert_eq!(prev_end, t.range().1);
    }

    #[test]
    fn op_at_resolves_every_template_address() {
        let t = TemplateTable::new(0x1000);
        for tpl in t.templates() {
            assert_eq!(t.op_at(tpl.entry), Some(tpl.op));
            assert_eq!(t.op_at(tpl.dispatch_addr), Some(tpl.op));
            assert_eq!(t.op_at(tpl.range.1 - 1), Some(tpl.op));
        }
        assert_eq!(t.op_at(0xFFF), None);
        assert_eq!(t.op_at(t.range().1), None);
    }

    #[test]
    fn conditional_templates_have_cond_addr() {
        let t = TemplateTable::new(0x1000);
        assert!(t.template(OpKind::Ifeq).cond_addr.is_some());
        assert!(t.template(OpKind::IfIcmplt).cond_addr.is_some());
        assert!(t.template(OpKind::Goto).cond_addr.is_none());
        assert!(t.template(OpKind::Iadd).cond_addr.is_none());
    }

    #[test]
    fn template_blobs_are_walkable() {
        let t = TemplateTable::new(0x1000);
        for &op in OpKind::ALL {
            let blob = t.blob_of(op);
            assert_eq!(blob.range(), t.template(op).range);
            let dispatches = blob
                .insns()
                .iter()
                .filter(|i| i.kind == MiKind::IndirectJump)
                .count();
            assert_eq!(dispatches, 1, "{op}: exactly one dispatch");
        }
    }
}
