//! Runtime values, objects and arrays.

use jportal_bytecode::ClassId;
use std::fmt;

/// Handle to a heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle(pub u32);

/// A runtime value: an integer or a (possibly null) reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// 64-bit integer (the model's only primitive).
    Int(i64),
    /// Object or array reference; `None` is `null`.
    Ref(Option<Handle>),
}

impl Value {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a reference (verified programs never do
    /// this; the executor treats it as a bug, not a Java exception).
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Ref(_) => panic!("expected int, found reference"),
        }
    }

    /// The reference payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer.
    pub fn as_ref_value(self) -> Option<Handle> {
        match self {
            Value::Ref(h) => h,
            Value::Int(_) => panic!("expected reference, found int"),
        }
    }
}

impl Default for Value {
    fn default() -> Value {
        Value::Int(0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Ref(None) => write!(f, "null"),
            Value::Ref(Some(h)) => write!(f, "@{}", h.0),
        }
    }
}

/// A heap object: a class instance or an integer array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapObject {
    /// Class instance with field slots.
    Instance {
        /// Dynamic class.
        class: ClassId,
        /// Field values (length = the class's `n_fields`).
        fields: Vec<Value>,
    },
    /// Integer array.
    IntArray {
        /// Elements.
        elems: Vec<i64>,
    },
}

/// The heap: a growable object table (no GC — runs are short-lived and
/// allocation volume is bounded by the workload generators).
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<HeapObject>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocates a class instance with zeroed fields.
    pub fn alloc_instance(&mut self, class: ClassId, n_fields: u16) -> Handle {
        self.objects.push(HeapObject::Instance {
            class,
            fields: vec![Value::Int(0); n_fields as usize],
        });
        Handle(self.objects.len() as u32 - 1)
    }

    /// Allocates an integer array of `len` zeros.
    pub fn alloc_array(&mut self, len: usize) -> Handle {
        self.objects.push(HeapObject::IntArray {
            elems: vec![0; len],
        });
        Handle(self.objects.len() as u32 - 1)
    }

    /// The object behind a handle.
    ///
    /// # Panics
    ///
    /// Panics on a dangling handle (cannot happen without unsafe code).
    pub fn get(&self, h: Handle) -> &HeapObject {
        &self.objects[h.0 as usize]
    }

    /// Mutable access to an object.
    ///
    /// # Panics
    ///
    /// Panics on a dangling handle.
    pub fn get_mut(&mut self, h: Handle) -> &mut HeapObject {
        &mut self.objects[h.0 as usize]
    }

    /// Dynamic class of an instance (`None` for arrays).
    pub fn class_of(&self, h: Handle) -> Option<ClassId> {
        match self.get(h) {
            HeapObject::Instance { class, .. } => Some(*class),
            HeapObject::IntArray { .. } => None,
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` if nothing was allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_fields_round_trip() {
        let mut heap = Heap::new();
        let h = heap.alloc_instance(ClassId(3), 2);
        match heap.get_mut(h) {
            HeapObject::Instance { fields, .. } => fields[1] = Value::Int(42),
            _ => unreachable!(),
        }
        match heap.get(h) {
            HeapObject::Instance { class, fields } => {
                assert_eq!(*class, ClassId(3));
                assert_eq!(fields[1], Value::Int(42));
                assert_eq!(fields[0], Value::Int(0));
            }
            _ => unreachable!(),
        }
        assert_eq!(heap.class_of(h), Some(ClassId(3)));
    }

    #[test]
    fn arrays() {
        let mut heap = Heap::new();
        let h = heap.alloc_array(4);
        match heap.get_mut(h) {
            HeapObject::IntArray { elems } => elems[3] = -7,
            _ => unreachable!(),
        }
        match heap.get(h) {
            HeapObject::IntArray { elems } => assert_eq!(elems, &vec![0, 0, 0, -7]),
            _ => unreachable!(),
        }
        assert_eq!(heap.class_of(h), None);
        assert_eq!(heap.len(), 1);
        assert!(!heap.is_empty());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(5).as_int(), 5);
        assert_eq!(Value::Ref(None).as_ref_value(), None);
        assert_eq!(Value::default(), Value::Int(0));
        assert_eq!(Value::Ref(Some(Handle(2))).to_string(), "@2");
        assert_eq!(Value::Ref(None).to_string(), "null");
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn int_accessor_rejects_refs() {
        Value::Ref(None).as_int();
    }
}
