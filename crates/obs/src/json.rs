//! A minimal JSON writer-side helper and validating parser.
//!
//! The exporters build JSON by hand (the crate is zero-dependency); this
//! module provides the one thing hand-built JSON gets wrong — string
//! escaping — and a strict recursive-descent validator used by tests and
//! the `observe` example's `--check` mode to prove the emitted documents
//! actually parse.

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The escaped form of `s` as a standalone JSON string literal.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

/// Validates that `input` is exactly one well-formed JSON document.
///
/// Strict per RFC 8259 structure (no trailing commas, no comments, no
/// trailing garbage). Returns the byte offset and a message on failure.
///
/// # Examples
///
/// ```
/// assert!(jportal_obs::json::validate(r#"{"a": [1, 2.5e3, "x\n", null]}"#).is_ok());
/// assert!(jportal_obs::json::validate("{,}").is_err());
/// ```
pub fn validate(input: &str) -> Result<(), JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(())
}

/// A validation failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            r#""aé\n""#,
            r#"{"a": {"b": [1, 2, {"c": null}]}, "d": true}"#,
            "[1, 2, 3]",
        ] {
            assert!(validate(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{'a':1}",
            "{\"a\":1,}",
            "01",
            "1 2",
            "\"unterminated",
            "{\"a\"}",
            "[1 2]",
            "\"bad\\q\"",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} should be rejected");
        }
    }

    #[test]
    fn escaping_round_trips_through_validation() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode é";
        let doc = format!("{{{}: {}}}", escaped("k"), escaped(nasty));
        assert!(validate(&doc).is_ok());
    }
}
