//! A minimal JSON writer-side helper and strict parser.
//!
//! The exporters build JSON by hand (the crate is zero-dependency); this
//! module provides the one thing hand-built JSON gets wrong — string
//! escaping — plus a strict recursive-descent parser. [`validate`]
//! checks well-formedness (used by tests and the `observe` example's
//! `--check` mode to prove the emitted documents actually parse);
//! [`parse`] additionally materialises the document as a [`Value`] tree
//! (used by `jportal-inspect` to diff journal JSONL files).

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The escaped form of `s` as a standalone JSON string literal.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

/// A parsed JSON document.
///
/// Objects keep their pairs in document order (duplicate keys are kept
/// as-is); numbers are `f64`, which is exact for every integer the
/// exporters emit (they stay below 2⁵³).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, pairs in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Validates that `input` is exactly one well-formed JSON document.
///
/// Strict per RFC 8259 structure (no trailing commas, no comments, no
/// trailing garbage). Returns the byte offset and a message on failure.
///
/// # Examples
///
/// ```
/// assert!(jportal_obs::json::validate(r#"{"a": [1, 2.5e3, "x\n", null]}"#).is_ok());
/// assert!(jportal_obs::json::validate("{,}").is_err());
/// ```
pub fn validate(input: &str) -> Result<(), JsonError> {
    parse(input).map(drop)
}

/// Parses exactly one strict JSON document into a [`Value`].
///
/// # Examples
///
/// ```
/// use jportal_obs::json::{parse, Value};
/// let v = parse(r#"{"kind": "hole_opened", "hole": 3}"#).unwrap();
/// assert_eq!(v.get("kind").and_then(Value::as_str), Some("hole_opened"));
/// assert_eq!(v.get("hole").and_then(Value::as_num), Some(3.0));
/// ```
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// A validation failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(pairs)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.run_str(run_start, self.pos - 1)?);
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.run_str(run_start, self.pos - 1)?);
                    match self.bump() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("bad \\u escape")),
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    run_start = self.pos;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {}
            }
        }
    }

    /// The input slice `[start, end)` as UTF-8 (a raw, escape-free run).
    fn run_str(&self, start: usize, end: usize) -> Result<&str, JsonError> {
        std::str::from_utf8(&self.bytes[start..end]).map_err(|_| JsonError {
            offset: start,
            message: "invalid UTF-8 in string".to_string(),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            match self.bump() {
                Some(c) if c.is_ascii_hexdigit() => {
                    v = v * 16 + (c as char).to_digit(16).unwrap();
                }
                _ => return Err(self.err("bad \\u escape")),
            }
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The grammar above admits only valid f64 spellings.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Ok(Value::Num(text.parse::<f64>().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            r#""aé\n""#,
            r#"{"a": {"b": [1, 2, {"c": null}]}, "d": true}"#,
            "[1, 2, 3]",
        ] {
            assert!(validate(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{'a':1}",
            "{\"a\":1,}",
            "01",
            "1 2",
            "\"unterminated",
            "{\"a\"}",
            "[1 2]",
            "\"bad\\q\"",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} should be rejected");
        }
    }

    #[test]
    fn escaping_round_trips_through_validation() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode é";
        let doc = format!("{{{}: {}}}", escaped("k"), escaped(nasty));
        assert!(validate(&doc).is_ok());
    }

    #[test]
    fn parse_builds_values_and_unescapes() {
        let v = parse(r#"{"a": [1, -2.5, "x\nA", null], "b": true}"#).unwrap();
        let a = v.get("a").unwrap();
        assert_eq!(
            a,
            &Value::Arr(vec![
                Value::Num(1.0),
                Value::Num(-2.5),
                Value::Str("x\nA".to_string()),
                Value::Null,
            ])
        );
        assert_eq!(v.get("b"), Some(&Value::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_round_trips_escaped_strings() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode é";
        let doc = format!("{{{}: {}}}", escaped("k"), escaped(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some(nasty));
    }

    #[test]
    fn parse_handles_surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v, Value::Str("😀".to_string()));
        let escaped_pair = "\"\\ud83d\\ude00\"";
        assert_eq!(parse(escaped_pair).unwrap(), Value::Str("😀".to_string()));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\ude00""#).is_err(), "lone low surrogate");
    }
}
