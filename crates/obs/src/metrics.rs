//! The metric registry: sharded atomic counters, set/max gauges and
//! fixed-bucket power-of-two histograms.
//!
//! Handles are cheap `Arc` clones registered by name; updating one is a
//! relaxed atomic on a thread-striped shard (counters) or a single atomic
//! (gauges, histogram buckets), so instruments can stay on in production.
//! A registry built disabled hands out **no-op handles**: the update fast
//! path is then a single branch on an `Option` discriminant — no
//! allocation, no atomic access — which is what lets the pipeline keep
//! `record` calls unconditionally inline on hot paths.
//!
//! Snapshots iterate a `BTreeMap`, so exported metrics are always sorted
//! by name regardless of registration or update order.

use crate::sketch::{Sketch, SketchCells, SketchSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shard count for counters: a power of two small enough to keep
/// snapshots cheap but large enough that concurrent workers rarely
/// collide on a cache line.
pub const COUNTER_SHARDS: usize = 8;

/// One cache line per shard so two workers bumping the same counter from
/// different threads never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedAtomic(AtomicU64);

/// Backing cells of one counter.
#[derive(Default)]
pub(crate) struct CounterCells {
    shards: [PaddedAtomic; COUNTER_SHARDS],
}

impl CounterCells {
    fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Monotonically-assigned per-thread shard index (round-robin over
/// threads, fixed for a thread's lifetime).
///
/// Const-initialized thread-local (no lazy-init flag or destructor on
/// the access path — this sits under every counter update on the hot
/// matcher loop) with the slot assigned on first use.
fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            s.set(v);
            v
        }
    })
}

/// A monotonically-increasing counter.
///
/// Cloning shares the cells. The default value is a no-op handle.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<CounterCells>>);

impl Counter {
    /// A handle that ignores every update (what disabled registries hand
    /// out). The update path is a branch on the `Option` — nothing else.
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// A live counter not attached to any registry (for components that
    /// must count even without a configured registry, e.g. the abstract
    /// DFA's stats view when constructed standalone).
    pub fn detached() -> Counter {
        Counter(Some(Arc::new(CounterCells::default())))
    }

    /// Whether updates actually land anywhere.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cells) = &self.0 {
            cells.shards[thread_shard()]
                .0
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total over all shards (0 for no-op handles).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map(|c| c.sum()).unwrap_or(0)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("live", &self.is_live())
            .field("value", &self.value())
            .finish()
    }
}

/// A last-value / high-water gauge.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A handle that ignores every update.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if it is higher (high-water-mark
    /// semantics).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for no-op handles).
    pub fn value(&self) -> u64 {
        self.0
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge")
            .field("value", &self.value())
            .finish()
    }
}

/// Number of histogram buckets: bucket `i` counts values whose bit
/// length is `i` (i.e. `v == 0` lands in bucket 0, `v ∈ [2^(i-1), 2^i)`
/// in bucket `i`), clamped into the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Backing cells of one histogram.
#[derive(Default)]
pub(crate) struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Bucket index of a value (its bit length, clamped).
fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the overflow
/// bucket).
fn bucket_upper(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-bucket histogram over `u64` values (power-of-two bounds).
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCells>>);

impl Histogram {
    /// A handle that ignores every update.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cells) = &self.0 {
            cells.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            cells.count.fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map(|c| c.count.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0
            .as_ref()
            .map(|c| c.sum.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// Point-in-time reading of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// Inclusive lower bound of the bucket with this inclusive upper bound
/// (buckets are power-of-two ranges: upper `2^i - 1` pairs with lower
/// `2^(i-1)`; the overflow bucket starts where the last finite one ends).
fn bucket_lower(upper: u64) -> u64 {
    match upper {
        0 => 0,
        u64::MAX => 1u64 << (HISTOGRAM_BUCKETS - 2),
        u => u.div_ceil(2),
    }
}

impl HistogramSnapshot {
    /// Approximate quantile (`0.0..=1.0`), linearly interpolated within
    /// the bucket where the cumulative count crosses `q * count`
    /// (assuming mass is uniform inside the bucket). Reporting the
    /// bucket's power-of-two upper bound instead would overestimate by
    /// up to 2×.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for &(upper, n) in &self.buckets {
            if cum + n >= target {
                let lower = bucket_lower(upper);
                let inside = (target - cum) as f64; // 1..=n within this bucket
                let width = (upper - lower) as f64;
                return lower + (width * (inside - 0.5) / n as f64).round() as u64;
            }
            cum += n;
        }
        self.buckets.last().map(|&(u, _)| u).unwrap_or(0)
    }
}

/// Point-in-time reading of a whole registry, sorted by metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, total)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Quantile sketches, sorted by name.
    pub sketches: Vec<SketchSnapshot>,
}

impl MetricsSnapshot {
    /// The counter with this exact name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// The gauge with this exact name, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// The histogram with this exact name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|h| h.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i])
    }

    /// The sketch with this exact name, if present.
    pub fn sketch(&self, name: &str) -> Option<&SketchSnapshot> {
        self.sketches
            .binary_search_by(|s| s.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.sketches[i])
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<CounterCells>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistogramCells>>,
    sketches: BTreeMap<String, Arc<SketchCells>>,
}

/// A named collection of instruments.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a short lock and
/// is get-or-create by name; callers hold the returned handles, so hot
/// paths never touch the registry itself. A registry constructed
/// disabled registers nothing and hands out no-op handles.
///
/// # Examples
///
/// ```
/// use jportal_obs::MetricsRegistry;
///
/// let reg = MetricsRegistry::new(true);
/// let c = reg.counter("pipeline.segments");
/// c.add(3);
/// assert_eq!(reg.snapshot().counter("pipeline.segments"), Some(3));
///
/// let off = MetricsRegistry::new(false);
/// off.counter("ignored").add(1);
/// assert!(off.snapshot().counters.is_empty());
/// ```
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for RegistryInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryInner")
            .field("counters", &self.counters.len())
            .field("gauges", &self.gauges.len())
            .field("histograms", &self.histograms.len())
            .field("sketches", &self.sketches.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates a registry; `enabled = false` makes every handle a no-op.
    pub fn new(enabled: bool) -> MetricsRegistry {
        MetricsRegistry {
            enabled,
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// Whether instruments record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Get-or-create the counter with this name.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.enabled {
            return Counter::noop();
        }
        let mut inner = self.inner.lock().unwrap();
        let cells = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(CounterCells::default()));
        Counter(Some(Arc::clone(cells)))
    }

    /// Get-or-create the gauge with this name.
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.enabled {
            return Gauge::noop();
        }
        let mut inner = self.inner.lock().unwrap();
        let cell = inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Gauge(Some(Arc::clone(cell)))
    }

    /// Get-or-create the histogram with this name.
    pub fn histogram(&self, name: &str) -> Histogram {
        if !self.enabled {
            return Histogram::noop();
        }
        let mut inner = self.inner.lock().unwrap();
        let cells = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCells::default()));
        Histogram(Some(Arc::clone(cells)))
    }

    /// Get-or-create the quantile sketch with this name.
    pub fn sketch(&self, name: &str) -> Sketch {
        if !self.enabled {
            return Sketch::noop();
        }
        let mut inner = self.inner.lock().unwrap();
        let cells = inner
            .sketches
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(SketchCells::default()));
        Sketch(Some(Arc::clone(cells)))
    }

    /// Reads every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.sum()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| HistogramSnapshot {
                    name: n.clone(),
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let n = b.load(Ordering::Relaxed);
                            (n > 0).then(|| (bucket_upper(i), n))
                        })
                        .collect(),
                })
                .collect(),
            sketches: inner
                .sketches
                .iter()
                .map(|(n, s)| Sketch::snapshot_named(s, n))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads_and_shards() {
        let reg = MetricsRegistry::new(true);
        let c = reg.counter("x");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
        assert_eq!(reg.snapshot().counter("x"), Some(8000));
    }

    #[test]
    fn counter_get_or_create_shares_cells() {
        let reg = MetricsRegistry::new(true);
        reg.counter("shared").add(2);
        reg.counter("shared").add(3);
        assert_eq!(reg.snapshot().counter("shared"), Some(5));
    }

    #[test]
    fn disabled_registry_is_a_noop() {
        let reg = MetricsRegistry::new(false);
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        c.add(10);
        g.set(10);
        h.record(10);
        assert!(!c.is_live());
        assert_eq!(c.value(), 0);
        assert_eq!(reg.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn gauge_set_and_set_max() {
        let reg = MetricsRegistry::new(true);
        let g = reg.gauge("hw");
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.value(), 5);
        g.set(1);
        assert_eq!(g.value(), 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let reg = MetricsRegistry::new(true);
        let h = reg.histogram("lat");
        for v in [0u64, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.count, 7);
        assert_eq!(hs.sum, 1110);
        // v == 0 lands in bucket 0 (upper bound 0).
        assert_eq!(hs.buckets[0], (0, 1));
        // 1000 lands in [512, 1023]; the interpolated estimate must stay
        // inside that bucket instead of jumping to the upper bound.
        let p99 = hs.quantile(0.99);
        assert!((512..=1023).contains(&p99), "p99 = {p99}");
        assert_eq!(hs.quantile(0.0), 0);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        // Regression: quantile() used to return the bucket's power-of-two
        // upper bound — here 127, a 32% overestimate of the true median.
        let reg = MetricsRegistry::new(true);
        let h = reg.histogram("lat");
        for _ in 0..1000 {
            h.record(96); // bucket [64, 127]
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("lat").unwrap();
        // Uniform-within-bucket interpolation puts the median at the
        // bucket midpoint, nowhere near the old 127 answer.
        assert_eq!(hs.quantile(0.5), 95);
        assert!(hs.quantile(0.99) < 127);
    }

    #[test]
    fn registry_sketches_snapshot_sorted() {
        let reg = MetricsRegistry::new(true);
        reg.sketch("z.lat").record(10);
        reg.sketch("a.lat").record(20);
        reg.sketch("a.lat").record(30);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.sketches.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a.lat", "z.lat"]);
        assert_eq!(snap.sketch("a.lat").unwrap().count, 2);
        assert_eq!(snap.sketch("missing"), None);
        let off = MetricsRegistry::new(false);
        off.sketch("ignored").record(1);
        assert!(off.snapshot().sketches.is_empty());
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = MetricsRegistry::new(true);
        for name in ["zeta", "alpha", "mid"] {
            reg.counter(name).incr();
        }
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
        assert_eq!(snap.counter("alpha"), Some(1));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn bucket_mapping_is_monotone() {
        let mut last = 0;
        for v in [0u64, 1, 2, 4, 8, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= last);
            last = b;
            assert!(v <= bucket_upper(b));
        }
    }
}
