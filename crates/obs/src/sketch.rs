//! Streaming quantile sketches: log-linear bucketed, mergeable, with a
//! bounded relative error on every reported quantile.
//!
//! The 32-bucket power-of-two [`crate::Histogram`] is fine for orders of
//! magnitude but useless for percentiles — a p99 read off a power-of-two
//! bucket bound can overestimate by up to 2×. A [`Sketch`] keeps the
//! same update cost (one relaxed atomic add into a fixed array, no
//! allocation) while bounding the quantile error:
//!
//! * values below [`SKETCH_LINEAR_MAX`] get **one bucket each** (exact);
//! * larger values are bucketed **log-linearly**: each power-of-two
//!   octave is split into [`SKETCH_SUBBUCKETS`] equal sub-buckets keyed
//!   by the top mantissa bits, so reporting a bucket's midpoint is off
//!   by at most half a sub-bucket width —
//!   [`SKETCH_MAX_RELATIVE_ERROR`] = 1/32 ≈ 3.1% of the true value.
//!
//! Snapshots are plain bucket-count vectors, so per-worker shards
//! [`SketchSnapshot::merge`] exactly (bucket-wise addition — associative
//! and commutative by construction), which is what lets a fan-out record
//! locally and publish one mergeable summary.
//!
//! # Examples
//!
//! ```
//! use jportal_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new(true);
//! let s = reg.sketch("decode.wall_us");
//! for v in [120u64, 450, 470, 500, 9000] {
//!     s.record(v);
//! }
//! let snap = reg.snapshot();
//! let sk = snap.sketch("decode.wall_us").unwrap();
//! assert_eq!(sk.count, 5);
//! assert_eq!(sk.quantile(1.0), 9000); // max is tracked exactly
//! let p50 = sk.quantile(0.5) as f64;
//! assert!((p50 - 470.0).abs() / 470.0 <= jportal_obs::SKETCH_MAX_RELATIVE_ERROR);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Values below this are bucketed exactly (one bucket per value).
pub const SKETCH_LINEAR_MAX: u64 = 128;

/// Sub-buckets per power-of-two octave in the logarithmic region.
pub const SKETCH_SUBBUCKETS: usize = 16;

/// Worst-case relative error of a reported quantile for values in the
/// logarithmic region (values below [`SKETCH_LINEAR_MAX`] are exact):
/// the reported midpoint and the true value share a sub-bucket of width
/// `2^(e-4)`, and the true value is at least `2^e`, so the error is
/// under `2^(e-5) / 2^e = 1/32`.
pub const SKETCH_MAX_RELATIVE_ERROR: f64 = 1.0 / 32.0;

/// First octave of the logarithmic region (`log2(SKETCH_LINEAR_MAX)`).
const FIRST_LOG_OCTAVE: usize = 7;

/// Total bucket count: one per value below [`SKETCH_LINEAR_MAX`], then
/// [`SKETCH_SUBBUCKETS`] per octave for exponents 7..=63.
pub const SKETCH_BUCKETS: usize =
    SKETCH_LINEAR_MAX as usize + (64 - FIRST_LOG_OCTAVE) * SKETCH_SUBBUCKETS;

/// Bucket index of a value.
#[inline]
pub fn sketch_bucket(v: u64) -> usize {
    if v < SKETCH_LINEAR_MAX {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (e - 4)) & 0xF) as usize;
        SKETCH_LINEAR_MAX as usize + (e - FIRST_LOG_OCTAVE) * SKETCH_SUBBUCKETS + sub
    }
}

/// Inclusive `(low, high)` bounds of a bucket.
pub fn sketch_bucket_bounds(index: usize) -> (u64, u64) {
    if index < SKETCH_LINEAR_MAX as usize {
        (index as u64, index as u64)
    } else {
        let rel = index - SKETCH_LINEAR_MAX as usize;
        let e = FIRST_LOG_OCTAVE + rel / SKETCH_SUBBUCKETS;
        let sub = (rel % SKETCH_SUBBUCKETS) as u64;
        let lo = (16 + sub) << (e - 4);
        let hi = lo + ((1u64 << (e - 4)) - 1);
        (lo, hi)
    }
}

/// The value a bucket reports for quantiles: itself in the linear
/// region, the midpoint in the logarithmic region.
fn sketch_bucket_mid(index: usize) -> u64 {
    let (lo, hi) = sketch_bucket_bounds(index);
    lo + (hi - lo) / 2
}

/// Backing cells of one sketch.
pub(crate) struct SketchCells {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    /// Exact extrema, so `quantile(0.0)` / `quantile(1.0)` are exact and
    /// interior estimates clamp into the observed range.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for SketchCells {
    fn default() -> SketchCells {
        SketchCells {
            buckets: (0..SKETCH_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A streaming quantile sketch over `u64` values.
///
/// Cloning shares the cells; the default value is a no-op handle (what
/// disabled registries hand out), whose update path is a single branch.
#[derive(Clone, Default)]
pub struct Sketch(pub(crate) Option<Arc<SketchCells>>);

impl Sketch {
    /// A handle that ignores every update.
    pub fn noop() -> Sketch {
        Sketch(None)
    }

    /// A live sketch not attached to any registry.
    pub fn detached() -> Sketch {
        Sketch(Some(Arc::new(SketchCells::default())))
    }

    /// Whether updates actually land anywhere.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cells) = &self.0 {
            cells.buckets[sketch_bucket(v)].fetch_add(1, Ordering::Relaxed);
            cells.count.fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(v, Ordering::Relaxed);
            cells.min.fetch_min(v, Ordering::Relaxed);
            cells.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map(|c| c.count.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Point-in-time reading under `name`.
    pub(crate) fn snapshot_named(cells: &SketchCells, name: &str) -> SketchSnapshot {
        let count = cells.count.load(Ordering::Relaxed);
        SketchSnapshot {
            name: name.to_string(),
            count,
            sum: cells.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                cells.min.load(Ordering::Relaxed)
            },
            max: cells.max.load(Ordering::Relaxed),
            buckets: cells
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Sketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sketch")
            .field("live", &self.is_live())
            .field("count", &self.count())
            .finish()
    }
}

/// Point-in-time reading of one sketch: exact count/sum/extrema plus the
/// non-empty log-linear buckets as `(bucket index, count)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SketchSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(bucket index, count)`, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl SketchSnapshot {
    /// Quantile estimate (`0.0..=1.0`) with relative error bounded by
    /// [`SKETCH_MAX_RELATIVE_ERROR`] (exact for values below
    /// [`SKETCH_LINEAR_MAX`] and at both extremes).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for &(idx, n) in &self.buckets {
            cum += n;
            if cum >= target {
                return sketch_bucket_mid(idx as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another shard into this one — exact bucket-wise addition,
    /// so merging is associative and commutative and a merged sketch is
    /// indistinguishable from one that saw every observation itself.
    pub fn merge(&mut self, other: &SketchSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        let mut merged: Vec<(u32, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(&(a, an)), Some(&(b, bn))) => match a.cmp(&b) {
                    std::cmp::Ordering::Less => {
                        merged.push((a, an));
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((b, bn));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push((a, an + bn));
                        i += 1;
                        j += 1;
                    }
                },
                (Some(&(a, an)), None) => {
                    merged.push((a, an));
                    i += 1;
                }
                (None, Some(&(b, bn))) => {
                    merged.push((b, bn));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.buckets = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_bounded() {
        let mut last = 0usize;
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            255,
            256,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let b = sketch_bucket(v);
            assert!(b >= last, "bucket index must be monotone in the value");
            assert!(b < SKETCH_BUCKETS);
            last = b;
            let (lo, hi) = sketch_bucket_bounds(b);
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
        assert_eq!(sketch_bucket(u64::MAX), SKETCH_BUCKETS - 1);
        let (_, hi) = sketch_bucket_bounds(SKETCH_BUCKETS - 1);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn linear_region_is_exact() {
        let s = Sketch::detached();
        for v in 0..SKETCH_LINEAR_MAX {
            s.record(v);
        }
        let snap = Sketch::snapshot_named(s.0.as_ref().unwrap(), "x");
        // 128 values, one per bucket: quantile(q) is the exact value.
        assert_eq!(snap.quantile(0.5), 63);
        assert_eq!(snap.quantile(0.25), 31);
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(1.0), 127);
    }

    #[test]
    fn log_region_error_is_bounded() {
        let s = Sketch::detached();
        let values: Vec<u64> = (0..1000).map(|i| 1000 + i * 37).collect();
        for &v in &values {
            s.record(v);
        }
        let snap = Sketch::snapshot_named(s.0.as_ref().unwrap(), "x");
        let mut sorted = values.clone();
        sorted.sort();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let target = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
            let truth = sorted[target - 1] as f64;
            let est = snap.quantile(q) as f64;
            assert!(
                (est - truth).abs() <= truth * SKETCH_MAX_RELATIVE_ERROR + 1.0,
                "q={q}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn merge_is_exact_bucketwise_addition() {
        let a = Sketch::detached();
        let b = Sketch::detached();
        let whole = Sketch::detached();
        for v in 0..500u64 {
            let side = if v % 2 == 0 { &a } else { &b };
            side.record(v * 13);
            whole.record(v * 13);
        }
        let mut sa = Sketch::snapshot_named(a.0.as_ref().unwrap(), "x");
        let sb = Sketch::snapshot_named(b.0.as_ref().unwrap(), "x");
        let sw = Sketch::snapshot_named(whole.0.as_ref().unwrap(), "x");
        sa.merge(&sb);
        assert_eq!(sa, sw, "merged shards must equal the unsharded sketch");
    }

    #[test]
    fn empty_and_extreme_quantiles() {
        let empty = SketchSnapshot::default();
        assert_eq!(empty.quantile(0.5), 0);
        let s = Sketch::detached();
        s.record(42);
        let snap = Sketch::snapshot_named(s.0.as_ref().unwrap(), "x");
        assert_eq!(snap.quantile(0.0), 42);
        assert_eq!(snap.quantile(0.5), 42);
        assert_eq!(snap.quantile(1.0), 42);
        assert_eq!(snap.min, 42);
        assert_eq!(snap.max, 42);
    }
}
