//! Windowed time-series: fixed-capacity rings of periodic counter and
//! gauge readings, with per-tick deltas for rate readouts.
//!
//! A [`SeriesStore`] turns point-in-time [`MetricsSnapshot`]s into
//! per-metric histories: every [`SeriesStore::tick`] appends one
//! [`SeriesPoint`] per live counter/gauge, recording the absolute value
//! and the delta since the previous tick. Rings are bounded
//! (capacity-oldest-out), so a long-running pipeline's telemetry
//! footprint is fixed no matter how long it runs.
//!
//! Ticks are driven by the caller — sim-time from the workload replay
//! loop or stage boundaries — so under a deterministic tick sequence the
//! stored series are bit-for-bit reproducible, which is what the
//! determinism tests pin.
//!
//! # Examples
//!
//! ```
//! use jportal_obs::{MetricsRegistry, SeriesStore};
//!
//! let reg = MetricsRegistry::new(true);
//! let c = reg.counter("bytes");
//! let mut store = SeriesStore::new(4);
//! c.add(10);
//! store.tick(100, &reg.snapshot());
//! c.add(5);
//! store.tick(200, &reg.snapshot());
//! let s = store.series("counter.bytes").unwrap();
//! assert_eq!(s.points.len(), 2);
//! assert_eq!(s.points[1].value, 15);
//! assert_eq!(s.points[1].delta, 5);
//! assert_eq!(s.rate_per_unit(), Some(0.05)); // 5 over 100 ts units
//! ```

use crate::metrics::MetricsSnapshot;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One periodic reading of one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Tick sequence number (monotone across the store's lifetime).
    pub seq: u64,
    /// Caller-supplied timestamp of the tick (sim cycles or wall µs).
    pub ts: u64,
    /// Absolute value at the tick.
    pub value: u64,
    /// Change since the previous tick of this metric (equal to `value`
    /// on its first point; negative only for gauges that moved down).
    pub delta: i64,
}

/// The windowed history of one metric.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Series {
    /// Qualified metric name (`counter.*` / `gauge.*`).
    pub name: String,
    /// Oldest-to-newest retained points.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Latest point, if any.
    pub fn last(&self) -> Option<&SeriesPoint> {
        self.points.last()
    }

    /// Average delta per timestamp unit over the retained window
    /// (`None` with fewer than two points or a zero-length window).
    pub fn rate_per_unit(&self) -> Option<f64> {
        let (first, last) = (self.points.first()?, self.points.last()?);
        if last.ts <= first.ts {
            return None;
        }
        let moved = self.points[1..].iter().map(|p| p.delta).sum::<i64>();
        Some(moved as f64 / (last.ts - first.ts) as f64)
    }
}

#[derive(Debug, Default)]
struct Ring {
    points: VecDeque<SeriesPoint>,
    last_value: u64,
}

/// Bounded per-metric time-series rings fed by periodic snapshots.
///
/// Not internally synchronized: the telemetry plane owns one behind its
/// own lock and ticks it from a single site at a time.
#[derive(Debug)]
pub struct SeriesStore {
    capacity: usize,
    next_seq: u64,
    rings: BTreeMap<String, Ring>,
}

impl SeriesStore {
    /// A store retaining at most `capacity` points per metric.
    pub fn new(capacity: usize) -> SeriesStore {
        SeriesStore {
            capacity: capacity.max(1),
            next_seq: 0,
            rings: BTreeMap::new(),
        }
    }

    /// Number of ticks recorded so far.
    pub fn ticks(&self) -> u64 {
        self.next_seq
    }

    /// Appends one point per counter and gauge in `snap`, stamped `ts`.
    /// Counters are prefixed `counter.`, gauges `gauge.`, so a counter
    /// and a gauge sharing a base name never collide.
    pub fn tick(&mut self, ts: u64, snap: &MetricsSnapshot) {
        let seq = self.next_seq;
        self.next_seq += 1;
        for (name, value) in snap
            .counters
            .iter()
            .map(|(n, v)| (format!("counter.{n}"), *v))
            .chain(snap.gauges.iter().map(|(n, v)| (format!("gauge.{n}"), *v)))
        {
            let ring = self.rings.entry(name).or_default();
            let delta = if ring.points.is_empty() {
                value as i64
            } else {
                value.wrapping_sub(ring.last_value) as i64
            };
            if ring.points.len() == self.capacity {
                ring.points.pop_front();
            }
            ring.points.push_back(SeriesPoint {
                seq,
                ts,
                value,
                delta,
            });
            ring.last_value = value;
        }
    }

    /// The retained window of this qualified metric name.
    pub fn series(&self, name: &str) -> Option<Series> {
        self.rings.get(name).map(|r| Series {
            name: name.to_string(),
            points: r.points.iter().copied().collect(),
        })
    }

    /// All qualified metric names with at least one point, sorted.
    pub fn names(&self) -> Vec<String> {
        self.rings.keys().cloned().collect()
    }

    /// Every retained series, sorted by name.
    pub fn all(&self) -> Vec<Series> {
        self.rings
            .iter()
            .map(|(n, r)| Series {
                name: n.clone(),
                points: r.points.iter().copied().collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn deltas_and_window_eviction() {
        let reg = MetricsRegistry::new(true);
        let c = reg.counter("ops");
        let mut store = SeriesStore::new(3);
        for i in 1..=5u64 {
            c.add(i);
            store.tick(i * 10, &reg.snapshot());
        }
        let s = store.series("counter.ops").unwrap();
        // Capacity 3: ticks 3, 4, 5 survive; values 6, 10, 15.
        assert_eq!(s.points.len(), 3);
        assert_eq!(
            s.points.iter().map(|p| p.value).collect::<Vec<_>>(),
            vec![6, 10, 15]
        );
        assert_eq!(
            s.points.iter().map(|p| p.delta).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(s.points[0].seq, 2);
        assert_eq!(store.ticks(), 5);
    }

    #[test]
    fn gauges_can_move_down() {
        let reg = MetricsRegistry::new(true);
        let g = reg.gauge("depth");
        let mut store = SeriesStore::new(8);
        g.set(10);
        store.tick(1, &reg.snapshot());
        g.set(4);
        store.tick(2, &reg.snapshot());
        let s = store.series("gauge.depth").unwrap();
        assert_eq!(s.points[1].delta, -6);
        assert_eq!(s.last().unwrap().value, 4);
    }

    #[test]
    fn rate_over_window() {
        let reg = MetricsRegistry::new(true);
        let c = reg.counter("bytes");
        let mut store = SeriesStore::new(16);
        c.add(100);
        store.tick(0, &reg.snapshot());
        c.add(300);
        store.tick(100, &reg.snapshot());
        let s = store.series("counter.bytes").unwrap();
        assert_eq!(s.rate_per_unit(), Some(3.0));
        // A single point has no rate.
        let mut one = SeriesStore::new(4);
        one.tick(5, &reg.snapshot());
        assert_eq!(one.series("counter.bytes").unwrap().rate_per_unit(), None);
    }

    #[test]
    fn names_are_sorted_and_prefixed() {
        let reg = MetricsRegistry::new(true);
        reg.counter("b").incr();
        reg.gauge("a").set(1);
        let mut store = SeriesStore::new(4);
        store.tick(1, &reg.snapshot());
        assert_eq!(store.names(), vec!["counter.b", "gauge.a"]);
        assert_eq!(store.all().len(), 2);
    }
}
