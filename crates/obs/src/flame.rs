//! Self-contained SVG flamegraph renderer for [`ProfileSnapshot`]s.
//!
//! No external crates, no JavaScript: plain nested `<rect>`/`<text>`
//! elements with a `<title>` child per frame so browsers show the
//! frame label and weight on hover. Layout and colors are fully
//! deterministic — children sort by label and hues derive from a hash
//! of the frame's category — so equal profiles render byte-identical
//! SVGs.

use crate::profile::ProfileSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write;

const WIDTH: f64 = 1200.0;
const ROW_H: f64 = 18.0;
const PAD: f64 = 10.0;
/// Rects narrower than this are still drawn (they carry a title), but
/// their text label is omitted.
const MIN_LABEL_W: f64 = 60.0;

#[derive(Default)]
struct Node {
    total: u64,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn insert(&mut self, stack: &[String], count: u64) {
        self.total += count;
        if let Some((head, rest)) = stack.split_first() {
            self.children
                .entry(head.clone())
                .or_default()
                .insert(rest, count);
        }
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(Node::depth).max().unwrap_or(0)
    }
}

fn escape_xml(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Deterministic warm-palette color keyed on the frame's category (the
/// label text before the first `:`), so all frames of one pipeline
/// stage share a hue family.
fn frame_color(label: &str) -> String {
    let cat = label.split(':').next().unwrap_or(label);
    let mut h: u32 = 2166136261;
    for b in cat.bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(16777619);
    }
    // Name hash adds small within-category brightness jitter.
    let mut j: u32 = 2166136261;
    for b in label.bytes() {
        j ^= u32::from(b);
        j = j.wrapping_mul(16777619);
    }
    let r = 205 + (h % 50);
    let g = 90 + ((h >> 8) % 110) + (j % 16);
    let b = 30 + ((h >> 16) % 40);
    format!("rgb({},{},{})", r.min(255), g.min(255), b.min(255))
}

fn render_node(
    out: &mut String,
    label: Option<&str>,
    node: &Node,
    x: f64,
    depth: usize,
    unit: f64,
    total: u64,
) {
    let w = node.total as f64 * unit;
    if let Some(label) = label {
        let y = PAD + depth as f64 * ROW_H;
        let pct = 100.0 * node.total as f64 / total.max(1) as f64;
        let esc = escape_xml(label);
        let row_h = ROW_H - 1.0;
        let color = frame_color(label);
        let _ = write!(
            out,
            "<g><title>{esc} ({} samples, {pct:.2}%)</title>\
             <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{row_h:.2}\" \
             fill=\"{color}\" rx=\"2\" stroke=\"white\" stroke-width=\"0.5\"/>",
            node.total,
        );
        if w >= MIN_LABEL_W {
            // Budget ~7 px per glyph; ellipsize what does not fit.
            let fit = ((w - 8.0) / 7.0) as usize;
            let shown = if label.len() > fit {
                format!("{}..", &label[..fit.saturating_sub(2)])
            } else {
                label.to_string()
            };
            let _ = write!(
                out,
                "<text x=\"{:.2}\" y=\"{:.2}\" font-size=\"12\" \
                 font-family=\"monospace\" fill=\"#201500\">{}</text>",
                x + 4.0,
                y + ROW_H - 5.0,
                escape_xml(&shown),
            );
        }
        out.push_str("</g>");
    }
    let mut cx = x;
    for (child_label, child) in &node.children {
        render_node(out, Some(child_label), child, cx, depth + 1, unit, total);
        cx += child.total as f64 * unit;
    }
}

/// Render a profile snapshot as a standalone SVG flamegraph (root at
/// the top, leaves growing downward). An empty profile renders a
/// placeholder message rather than a degenerate image.
pub fn flame_svg(snap: &ProfileSnapshot) -> String {
    let mut root = Node::default();
    for (stack, count) in &snap.stacks {
        root.insert(stack, *count);
    }
    let rows = root.depth(); // includes the virtual root row
    let height = PAD * 2.0 + ROW_H * rows.max(2) as f64 + 20.0;
    let mut out = String::new();
    let _ = write!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {WIDTH} {height:.0}\">\
         <rect width=\"100%\" height=\"100%\" fill=\"#fdf6ec\"/>",
    );
    if root.total == 0 {
        let _ = write!(
            out,
            "<text x=\"{:.0}\" y=\"{:.0}\" font-size=\"14\" font-family=\"monospace\" \
             fill=\"#555\">no samples recorded yet</text>",
            PAD,
            PAD + 20.0,
        );
    } else {
        let unit = (WIDTH - 2.0 * PAD) / root.total as f64;
        // Root row spans the full profile.
        let virtual_root = format!("all ({} samples)", root.total);
        let y = PAD;
        let _ = write!(
            out,
            "<g><title>{}</title><rect x=\"{PAD}\" y=\"{y}\" width=\"{:.2}\" \
             height=\"{:.2}\" fill=\"#d9c9a8\" rx=\"2\" stroke=\"white\" stroke-width=\"0.5\"/>\
             <text x=\"{:.2}\" y=\"{:.2}\" font-size=\"12\" font-family=\"monospace\" \
             fill=\"#201500\">{}</text></g>",
            escape_xml(&virtual_root),
            WIDTH - 2.0 * PAD,
            ROW_H - 1.0,
            PAD + 4.0,
            y + ROW_H - 5.0,
            escape_xml(&virtual_root),
        );
        render_node(&mut out, None, &root, PAD, 0, unit, root.total);
    }
    let _ = write!(
        out,
        "<text x=\"{:.0}\" y=\"{height:.0}\" font-size=\"11\" font-family=\"monospace\" \
         fill=\"#777\" dy=\"-6\">jportal self-profile · {} samples · {} Hz{}</text></svg>",
        PAD,
        snap.samples,
        snap.hz,
        if snap.deterministic {
            " · deterministic"
        } else {
            ""
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> ProfileSnapshot {
        ProfileSnapshot {
            hz: 997,
            samples: 7,
            stacks: vec![
                (vec!["pipeline:analyze".into()], 1),
                (
                    vec!["pipeline:analyze".into(), "decode:decode_segment".into()],
                    4,
                ),
                (
                    vec!["pipeline:analyze".into(), "recover:fill<&>hole".into()],
                    2,
                ),
            ],
            ..ProfileSnapshot::default()
        }
    }

    #[test]
    fn svg_is_well_formed_and_escaped() {
        let svg = flame_svg(&sample_snapshot());
        assert!(svg.starts_with("<svg "));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("pipeline:analyze"));
        // The raw <&> from the frame label must be escaped.
        assert!(svg.contains("recover:fill&lt;&amp;&gt;hole"));
        assert!(!svg.contains("fill<&>hole"));
        // Balanced groups.
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
    }

    #[test]
    fn svg_is_deterministic_and_weight_proportional() {
        let a = flame_svg(&sample_snapshot());
        let b = flame_svg(&sample_snapshot());
        assert_eq!(a, b);
        // The 4-sample decode frame must be wider than the 2-sample
        // recover frame: compare the rect widths by their titles.
        let width_of = |frag: &str| -> f64 {
            let at = a.find(frag).unwrap();
            let rect = &a[at..];
            let w = rect.split("width=\"").nth(1).unwrap();
            w.split('"').next().unwrap().parse().unwrap()
        };
        assert!(width_of("decode:decode_segment (4 samples") > width_of("recover:fill") * 1.5);
    }

    #[test]
    fn empty_profile_renders_placeholder() {
        let svg = flame_svg(&ProfileSnapshot::default());
        assert!(svg.contains("no samples recorded yet"));
        assert!(svg.ends_with("</svg>"));
    }
}
