//! Continuous self-profiling: a span-stack sampling profiler plus lock
//! contention accounting, both zero-dependency.
//!
//! The profiler never interrupts threads. Instead, every thread that
//! opens spans maintains an [`ActiveStack`] — a fixed-depth array of
//! interned frame ids guarded by a seqlock — and a background sampler
//! (or, in deterministic mode, the telemetry plane's logical ticks)
//! reads those stacks without ever blocking the writer. Samples fold
//! into a weighted stack-trie; snapshots render as flamegraph.pl
//! folded text, an SVG flamegraph (see [`crate::flame`]), or a
//! pprof-like JSON section inside `/metrics.json`.
//!
//! [`ContentionCounter`] is the companion primitive for lock
//! accounting: a relaxed counter increment on the uncontended
//! fast path (`try_lock` succeeding), and a wait-time [`Sketch`]
//! record only on the slow path where the lock was actually held by
//! someone else.

use crate::metrics::{Counter, MetricsRegistry};
use crate::sketch::Sketch;
use std::cell::{OnceCell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::TryLockError;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Frames beyond this depth are counted (`truncated`) but not stored;
/// span nesting in the pipeline is ~4 deep, so 24 leaves generous room.
pub const PROFILE_MAX_DEPTH: usize = 24;

// ---------------------------------------------------------------------------
// Frame interning
// ---------------------------------------------------------------------------

/// Global intern table mapping `(category, name)` span identity to a
/// dense `u32` frame id. Content-keyed so equal strings from different
/// crates share an id; the rendered label is `category:name`, which
/// lets folded-stack consumers recover the category as the text before
/// the first `:`.
#[derive(Default)]
struct FrameTable {
    ids: HashMap<(&'static str, &'static str), u32>,
    labels: Vec<String>,
}

fn frame_table() -> &'static Mutex<FrameTable> {
    static TABLE: OnceLock<Mutex<FrameTable>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(FrameTable::default()))
}

/// Intern a frame, hitting a per-thread pointer-identity cache so the
/// hot path (span open) touches no global lock after the first time a
/// thread sees a given span site.
fn intern_frame(cat: &'static str, name: &'static str) -> u32 {
    thread_local! {
        static CACHE: RefCell<HashMap<(usize, usize), u32>> = RefCell::new(HashMap::new());
    }
    CACHE.with(|cache| {
        let key = (cat.as_ptr() as usize, name.as_ptr() as usize);
        if let Some(&id) = cache.borrow().get(&key) {
            return id;
        }
        let mut table = frame_table().lock().unwrap();
        let next = table.labels.len() as u32;
        let id = match table.ids.get(&(cat, name)) {
            Some(&id) => id,
            None => {
                table.labels.push(format!("{cat}:{name}"));
                table.ids.insert((cat, name), next);
                next
            }
        };
        drop(table);
        cache.borrow_mut().insert(key, id);
        id
    })
}

fn frame_labels() -> Vec<String> {
    frame_table().lock().unwrap().labels.clone()
}

// ---------------------------------------------------------------------------
// Seqlock'd per-thread active stack
// ---------------------------------------------------------------------------

/// The live span stack of one thread. Only the owning thread writes;
/// the sampler reads through the seqlock and retries on a torn read.
/// Everything is an atomic, so a race is at worst a discarded sample,
/// never undefined behavior.
pub struct ActiveStack {
    /// Seqlock generation: odd while a push/pop is in flight.
    seq: AtomicU32,
    /// Logical depth — may exceed `PROFILE_MAX_DEPTH`, in which case
    /// the overflowing frames are simply not recorded.
    depth: AtomicU32,
    frames: [AtomicU32; PROFILE_MAX_DEPTH],
}

impl ActiveStack {
    fn new() -> ActiveStack {
        ActiveStack {
            seq: AtomicU32::new(0),
            depth: AtomicU32::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }

    /// Owner-thread only. The writer protocol is the classic seqlock:
    /// bump to odd, release-fence, mutate, then release-store to even —
    /// any reader that observed one of the mutations and then re-reads
    /// `seq` is guaranteed to see the odd (or later) generation.
    fn push(&self, id: u32) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let d = self.depth.load(Ordering::Relaxed);
        if (d as usize) < PROFILE_MAX_DEPTH {
            self.frames[d as usize].store(id, Ordering::Relaxed);
        }
        self.depth.store(d.wrapping_add(1), Ordering::Relaxed);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Owner-thread only.
    fn pop(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let d = self.depth.load(Ordering::Relaxed);
        self.depth.store(d.saturating_sub(1), Ordering::Relaxed);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Read a consistent snapshot into `out`. Returns the raw logical
    /// depth on success (which may exceed `out.len()` when the stack
    /// overflowed the fixed frame array) or `None` if the writer kept
    /// the lock torn for every retry — the sample is then dropped.
    fn sample(&self, out: &mut Vec<u32>) -> Option<u32> {
        for _ in 0..8 {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            out.clear();
            let raw = self.depth.load(Ordering::Relaxed);
            let stored = (raw as usize).min(PROFILE_MAX_DEPTH);
            for f in &self.frames[..stored] {
                out.push(f.load(Ordering::Relaxed));
            }
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 {
                return Some(raw);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Thread registry
// ---------------------------------------------------------------------------

fn stack_registry() -> &'static Mutex<Vec<Arc<ActiveStack>>> {
    static REG: OnceLock<Mutex<Vec<Arc<ActiveStack>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Keeps the registry bounded: worker threads are short-lived (one
/// scoped pool per fan-out), so each thread's stack deregisters itself
/// when the thread dies and its TLS destructor runs.
struct StackHandle(Arc<ActiveStack>);

impl Drop for StackHandle {
    fn drop(&mut self) {
        let mut reg = stack_registry().lock().unwrap();
        if let Some(i) = reg.iter().position(|s| Arc::ptr_eq(s, &self.0)) {
            reg.swap_remove(i);
        }
    }
}

thread_local! {
    static THREAD_STACK: OnceCell<StackHandle> = const { OnceCell::new() };
}

/// How many live profilers exist process-wide. Span open/close only
/// pays the active-stack maintenance cost while someone could actually
/// sample it; otherwise the check is a single relaxed load.
static LIVE_PROFILERS: AtomicUsize = AtomicUsize::new(0);

#[inline]
pub(crate) fn profiling_active() -> bool {
    LIVE_PROFILERS.load(Ordering::Relaxed) > 0
}

/// Push a frame onto the calling thread's active stack, registering
/// the stack on first use. Called from `SpanGuard::open`.
pub(crate) fn stack_push(cat: &'static str, name: &'static str) {
    let id = intern_frame(cat, name);
    THREAD_STACK.with(|cell| {
        let handle = cell.get_or_init(|| {
            let stack = Arc::new(ActiveStack::new());
            stack_registry().lock().unwrap().push(Arc::clone(&stack));
            StackHandle(stack)
        });
        handle.0.push(id);
    });
}

/// Pop the calling thread's active stack. Called from `SpanGuard::drop`.
pub(crate) fn stack_pop() {
    THREAD_STACK.with(|cell| {
        if let Some(handle) = cell.get() {
            handle.0.pop();
        }
    });
}

// ---------------------------------------------------------------------------
// Stack trie
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct TrieNode {
    children: Vec<(u32, usize)>,
    count: u64,
}

/// Weighted prefix tree over frame-id stacks; node 0 is the root.
#[derive(Debug)]
struct StackTrie {
    nodes: Vec<TrieNode>,
}

impl StackTrie {
    fn new() -> StackTrie {
        StackTrie {
            nodes: vec![TrieNode::default()],
        }
    }

    fn fold(&mut self, frames: &[u32]) {
        let mut at = 0usize;
        for &f in frames {
            at = match self.nodes[at].children.iter().find(|&&(ff, _)| ff == f) {
                Some(&(_, idx)) => idx,
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(TrieNode::default());
                    self.nodes[at].children.push((f, idx));
                    idx
                }
            };
        }
        self.nodes[at].count += 1;
    }

    /// Resolve every weighted path to `(labels, count)`.
    fn resolve(&self, labels: &[String]) -> Vec<(Vec<String>, u64)> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        self.walk(0, labels, &mut path, &mut out);
        out.sort();
        out
    }

    fn walk(
        &self,
        at: usize,
        labels: &[String],
        path: &mut Vec<String>,
        out: &mut Vec<(Vec<String>, u64)>,
    ) {
        let node = &self.nodes[at];
        if node.count > 0 && !path.is_empty() {
            out.push((path.clone(), node.count));
        }
        for &(frame, child) in &node.children {
            let label = labels
                .get(frame as usize)
                .cloned()
                .unwrap_or_else(|| format!("?:{frame}"));
            path.push(label);
            self.walk(child, labels, path, out);
            path.pop();
        }
    }
}

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

/// Sampling configuration carried inside `JPortalConfig::profiling`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Wall-clock sampling frequency for the background sampler.
    pub hz: u32,
    /// When set, no sampler thread runs; samples are taken at logical
    /// tick boundaries (plane ticks, or pipeline stage ticks when no
    /// plane is attached), so profiles replay byte-identically across
    /// worker counts.
    pub deterministic: bool,
}

impl Default for ProfileConfig {
    fn default() -> ProfileConfig {
        ProfileConfig {
            hz: 997,
            deterministic: false,
        }
    }
}

#[derive(Debug)]
struct ProfInner {
    trie: Mutex<StackTrie>,
    samples: AtomicU64,
    empty: AtomicU64,
    truncated: AtomicU64,
    torn: AtomicU64,
    shutdown: AtomicBool,
}

/// The profiler: owns the fold trie and, in wall mode, the sampler
/// thread. `stop` is idempotent and also runs on drop.
pub struct Profiler {
    cfg: ProfileConfig,
    inner: Arc<ProfInner>,
    sampler: Mutex<Option<JoinHandle<()>>>,
    stopped: AtomicBool,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler").field("cfg", &self.cfg).finish()
    }
}

impl Profiler {
    /// Create a profiler and, unless deterministic, start its sampler
    /// thread sweeping every registered thread stack at `cfg.hz`.
    pub fn start(cfg: ProfileConfig) -> Arc<Profiler> {
        LIVE_PROFILERS.fetch_add(1, Ordering::SeqCst);
        let inner = Arc::new(ProfInner {
            trie: Mutex::new(StackTrie::new()),
            samples: AtomicU64::new(0),
            empty: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let sampler = if cfg.deterministic {
            None
        } else {
            let worker = Arc::clone(&inner);
            let period = Duration::from_secs_f64(1.0 / f64::from(cfg.hz.max(1)));
            Some(
                std::thread::Builder::new()
                    .name("jportal-profiler".into())
                    .spawn(move || {
                        let mut frames = Vec::with_capacity(PROFILE_MAX_DEPTH);
                        let mut sweep = Vec::new();
                        while !worker.shutdown.load(Ordering::Relaxed) {
                            sweep.clear();
                            sweep.extend(stack_registry().lock().unwrap().iter().cloned());
                            for stack in &sweep {
                                match stack.sample(&mut frames) {
                                    Some(raw) => record(&worker, &frames, raw),
                                    None => {
                                        worker.torn.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            std::thread::sleep(period);
                        }
                    })
                    .expect("spawn profiler sampler"),
            )
        };
        Arc::new(Profiler {
            cfg,
            inner,
            sampler: Mutex::new(sampler),
            stopped: AtomicBool::new(false),
        })
    }

    pub fn config(&self) -> ProfileConfig {
        self.cfg
    }

    /// Take one sample of the calling thread's span stack. This is the
    /// deterministic-mode entry point, invoked at logical tick
    /// boundaries — sampling only the ticking thread keeps the sample
    /// set independent of how many workers happen to exist.
    pub fn sample_now(&self) {
        let mut frames = Vec::with_capacity(PROFILE_MAX_DEPTH);
        let raw = THREAD_STACK.with(|cell| match cell.get() {
            // Same-thread read: the seqlock is never torn mid-call.
            Some(handle) => handle.0.sample(&mut frames).unwrap_or(0),
            None => 0,
        });
        record(&self.inner, &frames, raw);
    }

    /// Stop the sampler thread and deregister from the process-wide
    /// live-profiler count. Idempotent.
    pub fn stop(&self) {
        if !self.stopped.swap(true, Ordering::SeqCst) {
            self.inner.shutdown.store(true, Ordering::SeqCst);
            LIVE_PROFILERS.fetch_sub(1, Ordering::SeqCst);
        }
        if let Some(handle) = self.sampler.lock().unwrap().take() {
            let _ = handle.join();
        }
    }

    /// Resolve the current trie into an immutable, label-resolved
    /// snapshot. Stacks are sorted lexicographically, so equal profiles
    /// render byte-identically regardless of intern or fold order.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let labels = frame_labels();
        let stacks = self.inner.trie.lock().unwrap().resolve(&labels);
        ProfileSnapshot {
            hz: self.cfg.hz,
            deterministic: self.cfg.deterministic,
            samples: self.inner.samples.load(Ordering::Relaxed),
            empty: self.inner.empty.load(Ordering::Relaxed),
            truncated: self.inner.truncated.load(Ordering::Relaxed),
            torn: self.inner.torn.load(Ordering::Relaxed),
            stacks,
        }
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        self.stop();
    }
}

fn record(inner: &ProfInner, frames: &[u32], raw_depth: u32) {
    inner.samples.fetch_add(1, Ordering::Relaxed);
    if frames.is_empty() {
        inner.empty.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if raw_depth as usize > PROFILE_MAX_DEPTH {
        inner.truncated.fetch_add(1, Ordering::Relaxed);
    }
    inner.trie.lock().unwrap().fold(frames);
}

// ---------------------------------------------------------------------------
// Profile snapshot + folded exposition
// ---------------------------------------------------------------------------

/// An immutable, label-resolved profile. `stacks` is sorted
/// lexicographically by frame path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    pub hz: u32,
    pub deterministic: bool,
    /// Total samples taken (including those that landed on an idle
    /// thread and recorded nothing).
    pub samples: u64,
    /// Samples that found an empty span stack.
    pub empty: u64,
    /// Samples whose logical depth exceeded [`PROFILE_MAX_DEPTH`].
    pub truncated: u64,
    /// Wall-mode samples dropped because the writer kept the seqlock
    /// torn across every retry.
    pub torn: u64,
    pub stacks: Vec<(Vec<String>, u64)>,
}

impl ProfileSnapshot {
    /// flamegraph.pl-compatible folded exposition: one
    /// `frame;frame;frame count` line per weighted stack, sorted.
    pub fn folded_text(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.stacks {
            out.push_str(&stack.join(";"));
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Sum of all stack weights (samples that recorded a stack).
    pub fn total_weight(&self) -> u64 {
        self.stacks.iter().map(|(_, c)| c).sum()
    }

    /// The `n` hottest stacks by weight, heaviest first; ties resolve
    /// by stack path so the output is deterministic.
    pub fn top(&self, n: usize) -> Vec<(Vec<String>, u64)> {
        let mut ranked = self.stacks.clone();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(n);
        ranked
    }

    /// The pprof-like JSON object embedded in `/metrics.json` under
    /// `"profile"`. Strict JSON; labels pass through the exporter's
    /// escaper at the call site, so here we only assemble structure.
    pub fn json_object(&self) -> String {
        use crate::json::write_escaped;
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"hz\":{},\"deterministic\":{},\"samples\":{},\"empty\":{},\"truncated\":{},\"torn\":{},\"stacks\":[",
            self.hz, self.deterministic, self.samples, self.empty, self.truncated, self.torn
        ));
        for (i, (stack, count)) in self.stacks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"frames\":[");
            for (j, frame) in stack.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_escaped(&mut out, frame);
            }
            out.push_str(&format!("],\"count\":{count}}}"));
        }
        out.push_str("]}");
        out
    }

    /// Parse folded text back into weighted stacks — the validation
    /// path for `jportal-inspect profile --check` and the example CI
    /// gate. Rejects empty frames, missing counts, and junk trailers.
    pub fn parse_folded(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let (path, count) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: no count separator", lineno + 1))?;
            let count: u64 = count
                .parse()
                .map_err(|_| format!("line {}: bad count {count:?}", lineno + 1))?;
            let frames: Vec<String> = path.split(';').map(str::to_string).collect();
            if frames.iter().any(String::is_empty) {
                return Err(format!("line {}: empty frame in {path:?}", lineno + 1));
            }
            out.push((frames, count));
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Contention accounting
// ---------------------------------------------------------------------------

/// Lock instrumentation handle: `acquires` counts every pass through
/// the lock, `contended` counts acquisitions that found it held, and
/// `wait_us` sketches how long those waited. All three are registry
/// handles, so a disabled registry makes the whole thing free after
/// one branch.
#[derive(Debug, Clone, Default)]
pub struct ContentionCounter {
    acquires: Counter,
    contended: Counter,
    wait_us: Sketch,
}

impl ContentionCounter {
    /// A counter that records nothing; the default for instrumented
    /// structures whose owner never wired a registry.
    pub fn noop() -> ContentionCounter {
        ContentionCounter::default()
    }

    /// Register `{name}.acquires`, `{name}.contended`, `{name}.wait_us`
    /// under the given registry (noop handles when it is disabled).
    pub fn register(reg: &MetricsRegistry, name: &str) -> ContentionCounter {
        ContentionCounter {
            acquires: reg.counter(&format!("{name}.acquires")),
            contended: reg.counter(&format!("{name}.contended")),
            wait_us: reg.sketch(&format!("{name}.wait_us")),
        }
    }

    #[inline]
    pub fn is_live(&self) -> bool {
        self.acquires.is_live()
    }

    /// Instrumented `Mutex::lock`: `try_lock` first (the success path
    /// costs one relaxed increment over a plain lock), and only when
    /// the lock is actually held does the slow path time the wait.
    #[inline]
    pub fn lock<'a, T>(&self, m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        if !self.is_live() {
            return m.lock().unwrap();
        }
        self.acquires.incr();
        match m.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                self.contended.incr();
                let t0 = Instant::now();
                let g = m.lock().unwrap();
                self.wait_us.record(t0.elapsed().as_micros() as u64);
                g
            }
            Err(TryLockError::Poisoned(e)) => panic!("instrumented lock poisoned: {e}"),
        }
    }

    /// Instrumented `RwLock::read`.
    #[inline]
    pub fn read<'a, T>(&self, l: &'a RwLock<T>) -> RwLockReadGuard<'a, T> {
        if !self.is_live() {
            return l.read().unwrap();
        }
        self.acquires.incr();
        match l.try_read() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                self.contended.incr();
                let t0 = Instant::now();
                let g = l.read().unwrap();
                self.wait_us.record(t0.elapsed().as_micros() as u64);
                g
            }
            Err(TryLockError::Poisoned(e)) => panic!("instrumented lock poisoned: {e}"),
        }
    }

    /// Instrumented `RwLock::write`.
    #[inline]
    pub fn write<'a, T>(&self, l: &'a RwLock<T>) -> RwLockWriteGuard<'a, T> {
        if !self.is_live() {
            return l.write().unwrap();
        }
        self.acquires.incr();
        match l.try_write() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                self.contended.incr();
                let t0 = Instant::now();
                let g = l.write().unwrap();
                self.wait_us.record(t0.elapsed().as_micros() as u64);
                g
            }
            Err(TryLockError::Poisoned(e)) => panic!("instrumented lock poisoned: {e}"),
        }
    }

    /// Time an opaque critical section (used where the lock lives
    /// behind another crate's API, e.g. the plane offer inside the ipt
    /// ring drain): counts an acquire and sketches the full duration.
    #[inline]
    pub fn timed<R>(&self, f: impl FnOnce() -> R) -> R {
        if !self.is_live() {
            return f();
        }
        self.acquires.incr();
        let t0 = Instant::now();
        let r = f();
        self.wait_us.record(t0.elapsed().as_micros() as u64);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_content_keyed_and_stable() {
        let a = intern_frame("decode", "decode_segment");
        let b = intern_frame("decode", "decode_segment");
        assert_eq!(a, b);
        let c = intern_frame("recover", "fill_hole");
        assert_ne!(a, c);
        let labels = frame_labels();
        assert_eq!(labels[a as usize], "decode:decode_segment");
        assert_eq!(labels[c as usize], "recover:fill_hole");
    }

    #[test]
    fn active_stack_push_pop_sample() {
        let s = ActiveStack::new();
        let mut out = Vec::new();
        assert_eq!(s.sample(&mut out), Some(0));
        assert!(out.is_empty());
        s.push(7);
        s.push(9);
        assert_eq!(s.sample(&mut out), Some(2));
        assert_eq!(out, [7, 9]);
        s.pop();
        assert_eq!(s.sample(&mut out), Some(1));
        assert_eq!(out, [7]);
        s.pop();
        // Underflow pops saturate rather than wrap.
        s.pop();
        assert_eq!(s.sample(&mut out), Some(0));
    }

    #[test]
    fn active_stack_overflow_is_counted_not_stored() {
        let s = ActiveStack::new();
        for i in 0..(PROFILE_MAX_DEPTH as u32 + 3) {
            s.push(i);
        }
        let mut out = Vec::new();
        let raw = s.sample(&mut out).unwrap();
        assert_eq!(raw as usize, PROFILE_MAX_DEPTH + 3);
        assert_eq!(out.len(), PROFILE_MAX_DEPTH);
        // Popping back below the limit restores exact frames.
        for _ in 0..4 {
            s.pop();
        }
        let raw = s.sample(&mut out).unwrap();
        assert_eq!(raw as usize, PROFILE_MAX_DEPTH - 1);
        assert_eq!(out.last(), Some(&(PROFILE_MAX_DEPTH as u32 - 2)));
    }

    #[test]
    fn trie_folds_and_resolves_sorted() {
        let mut t = StackTrie::new();
        t.fold(&[1, 2]);
        t.fold(&[1, 2]);
        t.fold(&[1]);
        t.fold(&[0]);
        let labels = vec!["a:x".to_string(), "b:y".to_string(), "c:z".to_string()];
        let stacks = t.resolve(&labels);
        assert_eq!(
            stacks,
            vec![
                (vec!["a:x".to_string()], 1),
                (vec!["b:y".to_string()], 1),
                (vec!["b:y".to_string(), "c:z".to_string()], 2),
            ]
        );
    }

    #[test]
    fn folded_round_trips_through_parse() {
        let snap = ProfileSnapshot {
            stacks: vec![
                (vec!["pipeline:analyze".into()], 3),
                (vec!["pipeline:analyze".into(), "decode:seg".into()], 11),
            ],
            ..ProfileSnapshot::default()
        };
        let text = snap.folded_text();
        assert_eq!(text, "pipeline:analyze 3\npipeline:analyze;decode:seg 11\n");
        assert_eq!(ProfileSnapshot::parse_folded(&text).unwrap(), snap.stacks);
        assert!(ProfileSnapshot::parse_folded("nocount\n").is_err());
        assert!(ProfileSnapshot::parse_folded("a;;b 3\n").is_err());
        assert!(ProfileSnapshot::parse_folded("a;b 3x\n").is_err());
    }

    #[test]
    fn deterministic_sample_now_records_own_stack() {
        let p = Profiler::start(ProfileConfig {
            deterministic: true,
            ..ProfileConfig::default()
        });
        assert!(profiling_active());
        // Empty stack: counted but no stack recorded.
        p.sample_now();
        stack_push("pipeline", "analyze");
        stack_push("decode", "decode_segment");
        p.sample_now();
        stack_pop();
        p.sample_now();
        stack_pop();
        let snap = p.snapshot();
        assert_eq!(snap.samples, 3);
        assert_eq!(snap.empty, 1);
        assert_eq!(snap.total_weight(), 2);
        let folded = snap.folded_text();
        assert!(folded.contains("pipeline:analyze 1\n"));
        assert!(folded.contains("pipeline:analyze;decode:decode_segment 1\n"));
        p.stop();
        p.stop(); // idempotent
    }

    #[test]
    fn wall_sampler_observes_a_busy_thread_and_stops() {
        let p = Profiler::start(ProfileConfig {
            hz: 2000,
            deterministic: false,
        });
        stack_push("recover", "assemble_thread");
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut weight = 0;
        while weight == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
            weight = p.snapshot().total_weight();
        }
        stack_pop();
        assert!(weight > 0, "sampler never observed the active stack");
        let folded = p.snapshot().folded_text();
        assert!(folded.contains("recover:assemble_thread"));
        p.stop();
        assert!(!profiling_active() || LIVE_PROFILERS.load(Ordering::SeqCst) > 0);
    }

    #[test]
    fn contention_counter_counts_and_times_waits() {
        let reg = MetricsRegistry::new(true);
        let cc = ContentionCounter::register(&reg, "lock.test");
        let m = Mutex::new(0u32);
        *cc.lock(&m) += 1;
        *cc.lock(&m) += 1;
        // Force a contended acquisition.
        let held = m.lock().unwrap();
        let waiter = std::thread::spawn({
            let cc = cc.clone();
            move || {
                // m borrowed via scope: use a static-free trick — time a
                // timed section instead to keep the borrow simple.
                cc.timed(|| std::thread::sleep(Duration::from_millis(2)));
            }
        });
        waiter.join().unwrap();
        drop(held);
        let rw = RwLock::new(0u32);
        let _ = *cc.read(&rw);
        *cc.write(&rw) += 1;
        let snap = reg.snapshot();
        assert_eq!(snap.counter("lock.test.acquires"), Some(5));
        assert_eq!(snap.counter("lock.test.contended"), Some(0));
        let wait = snap.sketch("lock.test.wait_us").unwrap();
        assert!(wait.count >= 1, "timed section must feed the sketch");

        let noop = ContentionCounter::noop();
        drop(noop.lock(&m));
        assert!(!noop.is_live());
    }

    #[test]
    fn contended_mutex_hits_slow_path() {
        let reg = MetricsRegistry::new(true);
        let cc = ContentionCounter::register(&reg, "lock.slow");
        let m = Arc::new(Mutex::new(()));
        let held = m.lock().unwrap();
        let t = std::thread::spawn({
            let cc = cc.clone();
            let m = Arc::clone(&m);
            move || {
                let _g = cc.lock(&m);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        drop(held);
        t.join().unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("lock.slow.acquires"), Some(1));
        assert_eq!(snap.counter("lock.slow.contended"), Some(1));
        assert!(snap.sketch("lock.slow.wait_us").unwrap().count == 1);
    }
}
