//! In-tree HTTP/1.1 scrape endpoint for the live telemetry plane — a
//! `std::net::TcpListener` and nothing else, matching the workspace's
//! zero-external-dependency posture.
//!
//! Four endpoints, all served from published [`PlaneSnapshot`]s
//! (consumers clone an `Arc`, never read a live instrument, so a slow
//! or stuck scraper cannot block the pipeline):
//!
//! | path                 | body                                             |
//! |----------------------|--------------------------------------------------|
//! | `/metrics`           | Prometheus text exposition (version 0.0.4)       |
//! | `/metrics.json`      | flat metrics JSON (strict RFC 8259); includes a  |
//! |                      | `"profile"` section when a profiler is attached  |
//! | `/series`            | `{"names": [..]}`; `?name=<q>` → one window      |
//! | `/stream`            | SSE, one `snapshot` event per accepted tick,     |
//! |                      | `: keep-alive` comments while the plane is idle  |
//! | `/profile/folded`    | flamegraph.pl-compatible folded stacks           |
//! | `/profile/flame.svg` | in-tree SVG flamegraph                           |
//!
//! Error responses are uniformly strict-JSON `{"error": "..."}` bodies
//! with the matching 4xx status (400 malformed head, 405 non-GET, 404
//! unknown path/series/profile, 431 oversized request head).
//!
//! The listener serves each connection on its own thread and answers
//! every request with `Connection: close` — scrape traffic is one
//! request per connection by nature, and the absence of keep-alive
//! bookkeeping is what keeps the handler a straight-line function.
//!
//! The request parser and SSE framer are pure functions
//! ([`parse_request`], [`sse_frame`]) so the wire formats are
//! unit-testable without sockets.

use crate::export::{metrics_snapshot_json_with_profile, prometheus_text};
use crate::flame::flame_svg;
use crate::plane::{PlaneSnapshot, TelemetryPlane};
use crate::series::Series;
use crate::sketch::Sketch;
use crate::Counter;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum bytes of request head read before giving up on a client.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long the SSE loop waits for a new snapshot before re-checking
/// the shutdown flag.
const SSE_POLL: Duration = Duration::from_millis(250);

/// Plane inactivity after which the SSE stream emits a comment frame so
/// proxies with idle timeouts keep the connection open.
const SSE_KEEPALIVE: Duration = Duration::from_secs(15);

/// The SSE comment frame sent on an idle stream: comment lines start
/// with `:` and carry no `id`/`event`/`data` field, so spec-compliant
/// consumers ignore them entirely.
pub fn sse_keepalive_frame() -> &'static str {
    ": keep-alive\n\n"
}

/// A parsed HTTP request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb, as sent (`GET`, `HEAD`, ...).
    pub method: String,
    /// Path without the query string (`/series`).
    pub path: String,
    /// Query string without the `?` (empty when absent).
    pub query: String,
}

impl Request {
    /// The value of query parameter `key`, if present
    /// (`name=a.b&x=1` → `param("name") == Some("a.b")`).
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Parses the first line of an HTTP/1.x request head. Returns `None`
/// for anything that is not `<METHOD> <target> HTTP/1.<x>`.
pub fn parse_request(head: &str) -> Option<Request> {
    let line = head.lines().next()?;
    let mut parts = line.split(' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if method.is_empty() || !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return None;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
    })
}

/// One server-sent event: `id`, an `event` name and a single-line
/// `data` payload, terminated by the required blank line.
pub fn sse_frame(id: u64, event: &str, data: &str) -> String {
    // Multi-line payloads need one `data:` per line or the consumer
    // sees a truncated document; our payloads are single-line JSON but
    // the framer handles the general case anyway.
    let mut out = format!("id: {id}\nevent: {event}\n");
    for line in data.split('\n') {
        out.push_str("data: ");
        out.push_str(line);
        out.push('\n');
    }
    out.push('\n');
    out
}

/// JSON body of one `/series` window.
fn series_json(s: &Series) -> String {
    let mut out = String::from("{\"name\":");
    crate::json::write_escaped(&mut out, &s.name);
    out.push_str(",\"points\":[");
    for (i, p) in s.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"seq\":{},\"ts\":{},\"value\":{},\"delta\":{}}}",
            p.seq, p.ts, p.value, p.delta
        ));
    }
    out.push_str("],\"rate_per_unit\":");
    match s.rate_per_unit() {
        Some(r) => out.push_str(&format!("{r}")),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

/// JSON payload of one SSE `snapshot` event: the tick stamp plus every
/// metric's per-tick delta.
fn stream_delta_json(snap: &PlaneSnapshot) -> String {
    let mut out = format!("{{\"seq\":{},\"ts\":{},\"deltas\":{{", snap.seq, snap.ts);
    let mut first = true;
    for s in &snap.series {
        if let Some(p) = s.last() {
            if !first {
                out.push(',');
            }
            first = false;
            crate::json::write_escaped(&mut out, &s.name);
            out.push_str(&format!(":{}", p.delta));
        }
    }
    out.push_str("}}");
    out
}

fn write_response(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // A client that hung up mid-response is its own problem.
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()));
}

struct ServeShared {
    plane: Arc<TelemetryPlane>,
    shutdown: AtomicBool,
    requests: Counter,
    scrape_us: Sketch,
}

fn handle_connection(shared: &ServeShared, mut stream: TcpStream) {
    let t0 = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let req = loop {
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => return,
        }
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break parse_request(&String::from_utf8_lossy(&head));
        }
        if head.len() > MAX_REQUEST_BYTES {
            // Answer before hanging up, so the client learns why.
            shared.requests.incr();
            write_response(
                &mut stream,
                "431 Request Header Fields Too Large",
                "application/json",
                "{\"error\":\"request head too large\"}",
            );
            return;
        }
    };
    shared.requests.incr();
    let Some(req) = req else {
        write_response(
            &mut stream,
            "400 Bad Request",
            "application/json",
            "{\"error\":\"bad request\"}",
        );
        return;
    };
    if req.method != "GET" {
        write_response(
            &mut stream,
            "405 Method Not Allowed",
            "application/json",
            "{\"error\":\"method not allowed, GET only\"}",
        );
        return;
    }
    let snap = shared.plane.latest();
    match req.path.as_str() {
        "/metrics" => write_response(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &prometheus_text(&snap.metrics),
        ),
        "/metrics.json" => {
            let profile = shared.plane.profiler().map(|p| p.snapshot());
            write_response(
                &mut stream,
                "200 OK",
                "application/json",
                &metrics_snapshot_json_with_profile(&snap.metrics, profile.as_ref()),
            );
        }
        "/profile/folded" => match shared.plane.profiler() {
            Some(p) => write_response(
                &mut stream,
                "200 OK",
                "text/plain; charset=utf-8",
                &p.snapshot().folded_text(),
            ),
            None => write_response(
                &mut stream,
                "404 Not Found",
                "application/json",
                "{\"error\":\"no profiler attached\"}",
            ),
        },
        "/profile/flame.svg" => match shared.plane.profiler() {
            Some(p) => write_response(
                &mut stream,
                "200 OK",
                "image/svg+xml",
                &flame_svg(&p.snapshot()),
            ),
            None => write_response(
                &mut stream,
                "404 Not Found",
                "application/json",
                "{\"error\":\"no profiler attached\"}",
            ),
        },
        "/series" => match req.param("name") {
            None => {
                let mut body = String::from("{\"names\":[");
                for (i, s) in snap.series.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    crate::json::write_escaped(&mut body, &s.name);
                }
                body.push_str("]}");
                write_response(&mut stream, "200 OK", "application/json", &body);
            }
            Some(name) => match snap.series(name) {
                Some(s) => {
                    write_response(&mut stream, "200 OK", "application/json", &series_json(s))
                }
                None => write_response(
                    &mut stream,
                    "404 Not Found",
                    "application/json",
                    "{\"error\":\"unknown series\"}",
                ),
            },
        },
        "/stream" => {
            let _ = stream.write_all(
                b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                  Cache-Control: no-cache\r\nConnection: close\r\n\r\n",
            );
            let mut last = 0u64;
            if snap.seq > 0 {
                let frame = sse_frame(snap.seq, "snapshot", &stream_delta_json(&snap));
                if stream.write_all(frame.as_bytes()).is_err() {
                    return;
                }
                last = snap.seq;
            }
            let mut idle = Duration::ZERO;
            while !shared.shutdown.load(Ordering::Relaxed) {
                let Some(snap) = shared.plane.wait_newer(last, SSE_POLL) else {
                    // Nothing published: keep the idle connection alive
                    // through proxies with comment frames.
                    idle += SSE_POLL;
                    if idle >= SSE_KEEPALIVE {
                        idle = Duration::ZERO;
                        if stream.write_all(sse_keepalive_frame().as_bytes()).is_err() {
                            return;
                        }
                    }
                    continue;
                };
                idle = Duration::ZERO;
                last = snap.seq;
                let frame = sse_frame(snap.seq, "snapshot", &stream_delta_json(&snap));
                if stream.write_all(frame.as_bytes()).is_err() {
                    return; // client went away
                }
            }
        }
        _ => write_response(
            &mut stream,
            "404 Not Found",
            "application/json",
            "{\"error\":\"not found\"}",
        ),
    }
    shared.scrape_us.record(t0.elapsed().as_micros() as u64);
}

/// A running scrape endpoint. Dropping (or [`TelemetryServer::shutdown`])
/// stops accepting; in-flight SSE streams notice within [`SSE_POLL`].
pub struct TelemetryServer {
    addr: SocketAddr,
    shared: Arc<ServeShared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `plane` in background threads. The server records
    /// its own telemetry through the plane's registry:
    /// `obs.serve.requests` and the `obs.serve.scrape_us` sketch.
    pub fn bind(plane: Arc<TelemetryPlane>, addr: &str) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let registry = plane.obs().registry();
        let shared = Arc::new(ServeShared {
            requests: registry.counter("obs.serve.requests"),
            scrape_us: registry.sketch("obs.serve.scrape_us"),
            plane,
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("jportal-telemetry".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let conn_shared = Arc::clone(&accept_shared);
                    let _ = std::thread::Builder::new()
                        .name("jportal-telemetry-conn".into())
                        .spawn(move || handle_connection(&conn_shared, stream));
                }
            })?;
        Ok(TelemetryServer {
            addr: local,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `http://<addr>` — the base URL clients scrape.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Stops accepting and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // The accept loop blocks in `incoming()`; a self-connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
    }
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer")
            .field("addr", &self.addr)
            .finish()
    }
}

/// A minimal HTTP response as [`http_get`] returns it.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Numeric status code from the status line.
    pub status: u16,
    /// Everything after the blank line.
    pub body: String,
}

/// A one-shot `GET` over a fresh connection — the in-tree client the
/// inspect tool, the live example and the loopback tests share. Only
/// `http://host:port/path` URLs; reads until the server closes.
pub fn http_get(url: &str) -> std::io::Result<HttpResponse> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidInput, m.to_string());
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| bad("only http:// URLs"))?;
    let (host, path) = match rest.split_once('/') {
        Some((h, p)) => (h, format!("/{p}")),
        None => (rest, "/".to_string()),
    };
    let mut stream = TcpStream::connect(host)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let body = match text.find("\r\n\r\n") {
        Some(at) => text[at + 4..].to_string(),
        None => String::new(),
    };
    Ok(HttpResponse { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing() {
        let r =
            parse_request("GET /series?name=counter.x&w=1 HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/series");
        assert_eq!(r.param("name"), Some("counter.x"));
        assert_eq!(r.param("w"), Some("1"));
        assert_eq!(r.param("missing"), None);
        let bare = parse_request("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(bare.path, "/");
        assert_eq!(bare.query, "");
        assert!(parse_request("").is_none());
        assert!(parse_request("GET /x").is_none());
        assert!(parse_request("GET /x SPDY/9").is_none());
        assert!(parse_request("GET /x HTTP/1.1 extra").is_none());
    }

    #[test]
    fn sse_framing() {
        assert_eq!(
            sse_frame(7, "snapshot", "{\"a\":1}"),
            "id: 7\nevent: snapshot\ndata: {\"a\":1}\n\n"
        );
        // Multi-line payloads become one data: line each.
        assert_eq!(
            sse_frame(1, "snapshot", "a\nb"),
            "id: 1\nevent: snapshot\ndata: a\ndata: b\n\n"
        );
    }

    #[test]
    fn series_json_is_valid() {
        use crate::series::{Series, SeriesPoint};
        let s = Series {
            name: "counter.x".into(),
            points: vec![
                SeriesPoint {
                    seq: 0,
                    ts: 10,
                    value: 5,
                    delta: 5,
                },
                SeriesPoint {
                    seq: 1,
                    ts: 20,
                    value: 3,
                    delta: -2,
                },
            ],
        };
        let doc = series_json(&s);
        crate::json::validate(&doc).expect("series json parses");
        assert!(doc.contains("\"delta\":-2"));
        let empty = Series {
            name: "g".into(),
            points: Vec::new(),
        };
        crate::json::validate(&series_json(&empty)).unwrap();
        assert!(series_json(&empty).contains("\"rate_per_unit\":null"));
    }
}
