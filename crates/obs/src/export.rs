//! Exporters: Chrome trace-event JSON, a flat metrics JSON snapshot and
//! a human-readable summary table.
//!
//! The Chrome document loads in `chrome://tracing` / Perfetto: wall-time
//! spans render as one track per worker thread under pid 1, and
//! simulated-time events (e.g. PT overflow windows, timestamped in
//! simulation cycles) under pid 2 so the two time bases never share an
//! axis.

use std::collections::BTreeSet;

use crate::json::write_escaped;
use crate::metrics::MetricsSnapshot;
use crate::span::{ArgValue, SpanEvent};

/// Everything one observed run produced: a metrics snapshot plus the
/// merged span list.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Counters, gauges and histograms, sorted by name.
    pub metrics: MetricsSnapshot,
    /// Spans, deterministically merged (see `SpanCollector::snapshot`).
    pub spans: Vec<SpanEvent>,
}

impl TelemetryReport {
    /// Distinct span categories, sorted.
    pub fn span_categories(&self) -> BTreeSet<&'static str> {
        self.spans.iter().map(|s| s.cat).collect()
    }

    /// Timing-free span structure: the sorted multiset of
    /// `cat/parent/name{args}` strings. Identical across worker counts
    /// for a deterministic pipeline.
    pub fn span_structure(&self) -> Vec<String> {
        let mut v: Vec<String> = self.spans.iter().map(SpanEvent::structure).collect();
        v.sort();
        v
    }

    /// Chrome trace-event JSON (the "JSON Object Format" with a
    /// `traceEvents` array of complete `"ph": "X"` events).
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 128);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        // Process-name metadata so the two time bases are labelled.
        out.push_str(concat!(
            r#"{"name":"process_name","ph":"M","pid":1,"tid":0,"#,
            r#""args":{"name":"jportal offline (wall time)"}},"#,
            r#"{"name":"process_name","ph":"M","pid":2,"tid":0,"#,
            r#""args":{"name":"jportal collection (simulated time)"}}"#,
        ));
        for e in &self.spans {
            out.push(',');
            out.push_str("{\"name\":");
            write_escaped(&mut out, e.name);
            out.push_str(",\"cat\":");
            write_escaped(&mut out, e.cat);
            out.push_str(&format!(
                ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
                e.ts_us,
                e.dur_us,
                if e.sim { 2 } else { 1 },
                e.tid
            ));
            out.push_str(",\"args\":{");
            let mut first = true;
            if let Some(p) = e.parent {
                out.push_str("\"parent\":");
                write_escaped(&mut out, p);
                first = false;
            }
            for (k, v) in &e.args {
                if !first {
                    out.push(',');
                }
                first = false;
                write_escaped(&mut out, k);
                out.push(':');
                match v {
                    ArgValue::Int(i) => out.push_str(&i.to_string()),
                    ArgValue::Str(s) => write_escaped(&mut out, s),
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Flat metrics JSON: `{"counters": {..}, "gauges": {..},
    /// "histograms": {name: {count, sum, p50, p99, buckets: [[upper,
    /// n], ..]}}}`, all keys sorted.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.metrics.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.metrics.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.metrics.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, &h.name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
                h.count,
                h.sum,
                h.quantile(0.5),
                h.quantile(0.99)
            ));
            for (j, (upper, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{upper},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// A human-readable summary: counters, gauges, histogram quantiles
    /// and a per-category span rollup.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .metrics
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.metrics.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.metrics.histograms.iter().map(|h| h.name.len()))
            .chain(self.span_categories().iter().map(|c| c.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        if !self.metrics.counters.is_empty() {
            out.push_str("counters\n");
            // Recovery prune counters read as *rates* over the candidates
            // considered — raw counts are meaningless across workloads of
            // different sizes, and the rate of a merged run is the rate
            // over summed numerator/denominator, never an average of
            // per-shard rates.
            let candidates = self.metrics.counter("core.recover.candidates");
            for (name, v) in &self.metrics.counters {
                match (name.as_str(), candidates) {
                    ("core.recover.pruned_tier1" | "core.recover.pruned_tier2", Some(c))
                        if c > 0 =>
                    {
                        let rate = *v as f64 / c as f64;
                        out.push_str(&format!(
                            "  {name:<width$}  {:>12} ({:.1}% of candidates)\n",
                            v,
                            rate * 100.0
                        ));
                    }
                    _ => out.push_str(&format!("  {name:<width$}  {v:>12}\n")),
                }
            }
        }
        if !self.metrics.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, v) in &self.metrics.gauges {
                out.push_str(&format!("  {name:<width$}  {v:>12}\n"));
            }
        }
        if !self.metrics.histograms.is_empty() {
            out.push_str("histograms (count / sum / ~p50 / ~p99)\n");
            for h in &self.metrics.histograms {
                out.push_str(&format!(
                    "  {:<width$}  {:>8} {:>12} {:>10} {:>10}\n",
                    h.name,
                    h.count,
                    h.sum,
                    h.quantile(0.5),
                    h.quantile(0.99)
                ));
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans by category (count / total µs·cycles)\n");
            for cat in self.span_categories() {
                let (n, total): (usize, u64) = self
                    .spans
                    .iter()
                    .filter(|s| s.cat == cat)
                    .fold((0, 0), |(n, t), s| (n + 1, t + s.dur_us));
                out.push_str(&format!("  {cat:<width$}  {n:>8} {total:>12}\n"));
            }
        }
        if out.is_empty() {
            out.push_str("(observability disabled: nothing recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::MetricsRegistry;

    fn sample_report() -> TelemetryReport {
        let reg = MetricsRegistry::new(true);
        reg.counter("a.count").add(7);
        reg.gauge("b.high_water").set_max(42);
        let h = reg.histogram("c.wall_us");
        h.record(3);
        h.record(900);
        TelemetryReport {
            metrics: reg.snapshot(),
            spans: vec![
                SpanEvent {
                    cat: "decode",
                    name: "piece",
                    parent: Some("analyze"),
                    args: vec![
                        ("idx", ArgValue::Int(0)),
                        ("who", ArgValue::Str("a\"b".into())),
                    ],
                    ts_us: 10,
                    dur_us: 5,
                    tid: 1,
                    sim: false,
                },
                SpanEvent {
                    cat: "collect",
                    name: "overflow",
                    parent: None,
                    args: vec![("core", ArgValue::Int(0))],
                    ts_us: 100,
                    dur_us: 50,
                    tid: 0,
                    sim: true,
                },
            ],
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_fields() {
        let r = sample_report();
        let doc = r.chrome_trace_json();
        validate(&doc).expect("chrome trace must parse");
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\":\"X\""));
        // Wall span on pid 1, simulated span on pid 2.
        assert!(doc.contains("\"pid\":1,\"tid\":1"));
        assert!(doc.contains("\"pid\":2,\"tid\":0"));
        // Escaped argument survived.
        assert!(doc.contains("a\\\"b"));
    }

    #[test]
    fn metrics_json_is_valid_and_flat() {
        let r = sample_report();
        let doc = r.metrics_json();
        validate(&doc).expect("metrics json must parse");
        assert!(doc.contains("\"a.count\":7"));
        assert!(doc.contains("\"b.high_water\":42"));
        assert!(doc.contains("\"count\":2"));
    }

    #[test]
    fn summary_table_lists_everything() {
        let r = sample_report();
        let t = r.summary_table();
        assert!(t.contains("a.count"));
        assert!(t.contains("b.high_water"));
        assert!(t.contains("c.wall_us"));
        assert!(t.contains("decode"));
        assert!(t.contains("collect"));
    }

    #[test]
    fn summary_table_shows_prune_rates_over_candidates() {
        let reg = MetricsRegistry::new(true);
        reg.counter("core.recover.candidates").add(200);
        reg.counter("core.recover.pruned_tier1").add(150);
        reg.counter("core.recover.pruned_tier2").add(30);
        let r = TelemetryReport {
            metrics: reg.snapshot(),
            spans: Vec::new(),
        };
        let t = r.summary_table();
        assert!(t.contains("75.0% of candidates"), "tier-1 rate:\n{t}");
        assert!(t.contains("15.0% of candidates"), "tier-2 rate:\n{t}");
        // Without the denominator the raw count renders unannotated.
        let reg2 = MetricsRegistry::new(true);
        reg2.counter("core.recover.pruned_tier1").add(150);
        let t2 = TelemetryReport {
            metrics: reg2.snapshot(),
            spans: Vec::new(),
        }
        .summary_table();
        assert!(!t2.contains("of candidates"));
    }

    #[test]
    fn categories_and_structure_are_sorted() {
        let r = sample_report();
        let cats: Vec<&str> = r.span_categories().into_iter().collect();
        assert_eq!(cats, vec!["collect", "decode"]);
        let s = r.span_structure();
        assert_eq!(s.len(), 2);
        assert!(s[0] < s[1]);
    }

    #[test]
    fn empty_report_renders() {
        let r = TelemetryReport::default();
        validate(&r.chrome_trace_json()).unwrap();
        validate(&r.metrics_json()).unwrap();
        assert!(r.summary_table().contains("disabled"));
    }
}
