//! Exporters: Chrome trace-event JSON, a flat metrics JSON snapshot and
//! a human-readable summary table.
//!
//! The Chrome document loads in `chrome://tracing` / Perfetto: wall-time
//! spans render as one track per worker thread under pid 1, and
//! simulated-time events (e.g. PT overflow windows, timestamped in
//! simulation cycles) under pid 2 so the two time bases never share an
//! axis.

use std::collections::BTreeSet;

use crate::json::write_escaped;
use crate::metrics::MetricsSnapshot;
use crate::span::{ArgValue, SpanEvent};

/// Everything one observed run produced: a metrics snapshot plus the
/// merged span list.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Counters, gauges and histograms, sorted by name.
    pub metrics: MetricsSnapshot,
    /// Spans, deterministically merged (see `SpanCollector::snapshot`).
    pub spans: Vec<SpanEvent>,
}

impl TelemetryReport {
    /// Distinct span categories, sorted.
    pub fn span_categories(&self) -> BTreeSet<&'static str> {
        self.spans.iter().map(|s| s.cat).collect()
    }

    /// Timing-free span structure: the sorted multiset of
    /// `cat/parent/name{args}` strings. Identical across worker counts
    /// for a deterministic pipeline.
    pub fn span_structure(&self) -> Vec<String> {
        let mut v: Vec<String> = self.spans.iter().map(SpanEvent::structure).collect();
        v.sort();
        v
    }

    /// Chrome trace-event JSON (the "JSON Object Format" with a
    /// `traceEvents` array of complete `"ph": "X"` events).
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 128);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        // Process-name metadata so the two time bases are labelled.
        out.push_str(concat!(
            r#"{"name":"process_name","ph":"M","pid":1,"tid":0,"#,
            r#""args":{"name":"jportal offline (wall time)"}},"#,
            r#"{"name":"process_name","ph":"M","pid":2,"tid":0,"#,
            r#""args":{"name":"jportal collection (simulated time)"}}"#,
        ));
        for e in &self.spans {
            out.push(',');
            out.push_str("{\"name\":");
            write_escaped(&mut out, e.name);
            out.push_str(",\"cat\":");
            write_escaped(&mut out, e.cat);
            out.push_str(&format!(
                ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
                e.ts_us,
                e.dur_us,
                if e.sim { 2 } else { 1 },
                e.tid
            ));
            out.push_str(",\"args\":{");
            let mut first = true;
            if let Some(p) = e.parent {
                out.push_str("\"parent\":");
                write_escaped(&mut out, p);
                first = false;
            }
            for (k, v) in &e.args {
                if !first {
                    out.push(',');
                }
                first = false;
                write_escaped(&mut out, k);
                out.push(':');
                match v {
                    ArgValue::Int(i) => out.push_str(&i.to_string()),
                    ArgValue::Str(s) => write_escaped(&mut out, s),
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Flat metrics JSON (see [`metrics_snapshot_json`]).
    pub fn metrics_json(&self) -> String {
        metrics_snapshot_json(&self.metrics)
    }

    /// A human-readable summary: counters, gauges, histogram quantiles
    /// and a per-category span rollup.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .metrics
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.metrics.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.metrics.histograms.iter().map(|h| h.name.len()))
            .chain(self.metrics.sketches.iter().map(|s| s.name.len()))
            .chain(self.span_categories().iter().map(|c| c.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        if !self.metrics.counters.is_empty() {
            out.push_str("counters\n");
            // Recovery prune counters read as *rates* over the candidates
            // considered — raw counts are meaningless across workloads of
            // different sizes, and the rate of a merged run is the rate
            // over summed numerator/denominator, never an average of
            // per-shard rates.
            let candidates = self.metrics.counter("core.recover.candidates");
            for (name, v) in &self.metrics.counters {
                match (name.as_str(), candidates) {
                    ("core.recover.pruned_tier1" | "core.recover.pruned_tier2", Some(c))
                        if c > 0 =>
                    {
                        let rate = *v as f64 / c as f64;
                        out.push_str(&format!(
                            "  {name:<width$}  {:>12} ({:.1}% of candidates)\n",
                            v,
                            rate * 100.0
                        ));
                    }
                    _ => out.push_str(&format!("  {name:<width$}  {v:>12}\n")),
                }
            }
        }
        if !self.metrics.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, v) in &self.metrics.gauges {
                out.push_str(&format!("  {name:<width$}  {v:>12}\n"));
            }
        }
        if !self.metrics.histograms.is_empty() {
            out.push_str("histograms (count / sum / ~p50 / ~p99)\n");
            for h in &self.metrics.histograms {
                out.push_str(&format!(
                    "  {:<width$}  {:>8} {:>12} {:>10} {:>10}\n",
                    h.name,
                    h.count,
                    h.sum,
                    h.quantile(0.5),
                    h.quantile(0.99)
                ));
            }
        }
        if !self.metrics.sketches.is_empty() {
            out.push_str("sketches (count / ~p50 / ~p90 / ~p99 / max)\n");
            for s in &self.metrics.sketches {
                out.push_str(&format!(
                    "  {:<width$}  {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                    s.name,
                    s.count,
                    s.quantile(0.5),
                    s.quantile(0.9),
                    s.quantile(0.99),
                    s.max
                ));
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans by category (count / total µs·cycles)\n");
            for cat in self.span_categories() {
                let (n, total): (usize, u64) = self
                    .spans
                    .iter()
                    .filter(|s| s.cat == cat)
                    .fold((0, 0), |(n, t), s| (n + 1, t + s.dur_us));
                out.push_str(&format!("  {cat:<width$}  {n:>8} {total:>12}\n"));
            }
        }
        if out.is_empty() {
            out.push_str("(observability disabled: nothing recorded)\n");
        }
        out
    }
}

/// Flat metrics JSON from a bare snapshot: `{"counters": {..}, "gauges":
/// {..}, "histograms": {name: {count, sum, p50, p99, buckets: [[upper,
/// n], ..]}}, "sketches": {name: {count, sum, min, max, p50, p90, p99,
/// buckets: [[index, n], ..]}}}`, all keys sorted. Always valid per the
/// strict `obs::json` validator.
pub fn metrics_snapshot_json(metrics: &MetricsSnapshot) -> String {
    metrics_snapshot_json_with_profile(metrics, None)
}

/// [`metrics_snapshot_json`] plus an optional `"profile"` section
/// holding a pprof-like sample dump (see
/// [`crate::profile::ProfileSnapshot::json_object`]). With `None` the
/// output is byte-identical to the plain snapshot, so existing
/// consumers never see the extra key unless a profiler is attached.
pub fn metrics_snapshot_json_with_profile(
    metrics: &MetricsSnapshot,
    profile: Option<&crate::profile::ProfileSnapshot>,
) -> String {
    let mut out = metrics_snapshot_json_inner(metrics);
    if let Some(p) = profile {
        // Splice before the closing brace of the document object.
        out.pop();
        out.push_str(",\"profile\":");
        out.push_str(&p.json_object());
        out.push('}');
    }
    out
}

fn metrics_snapshot_json_inner(metrics: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in metrics.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(&mut out, name);
        out.push_str(&format!(":{v}"));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in metrics.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(&mut out, name);
        out.push_str(&format!(":{v}"));
    }
    out.push_str("},\"histograms\":{");
    for (i, h) in metrics.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(&mut out, &h.name);
        out.push_str(&format!(
            ":{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
            h.count,
            h.sum,
            h.quantile(0.5),
            h.quantile(0.99)
        ));
        for (j, (upper, n)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{upper},{n}]"));
        }
        out.push_str("]}");
    }
    out.push_str("},\"sketches\":{");
    for (i, s) in metrics.sketches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(&mut out, &s.name);
        out.push_str(&format!(
            ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
             \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
            s.count,
            s.sum,
            s.min,
            s.max,
            s.quantile(0.5),
            s.quantile(0.9),
            s.quantile(0.99)
        ));
        for (j, (idx, n)) in s.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{idx},{n}]"));
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

/// A metric name in Prometheus form: `jportal_` prefix, dots and any
/// other non-`[a-zA-Z0-9_]` characters replaced by underscores.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(8 + name.len());
    out.push_str("jportal_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' {
            c
        } else {
            '_'
        });
    }
    out
}

/// HELP-text escaping per the Prometheus text format: backslash and
/// newline only.
fn prometheus_help(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Prometheus text exposition (version 0.0.4) of a metrics snapshot:
/// counters and gauges as-is, histograms as cumulative `_bucket{le=..}`
/// families, sketches as summaries with `quantile` labels. HELP lines
/// carry the original dotted metric name.
pub fn prometheus_text(metrics: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(256);
    for (name, v) in &metrics.counters {
        let p = prometheus_name(name);
        out.push_str(&format!("# HELP {p} "));
        prometheus_help(&mut out, name);
        out.push('\n');
        out.push_str(&format!("# TYPE {p} counter\n{p} {v}\n"));
    }
    for (name, v) in &metrics.gauges {
        let p = prometheus_name(name);
        out.push_str(&format!("# HELP {p} "));
        prometheus_help(&mut out, name);
        out.push('\n');
        out.push_str(&format!("# TYPE {p} gauge\n{p} {v}\n"));
    }
    for h in &metrics.histograms {
        let p = prometheus_name(&h.name);
        out.push_str(&format!("# HELP {p} "));
        prometheus_help(&mut out, &h.name);
        out.push('\n');
        out.push_str(&format!("# TYPE {p} histogram\n"));
        let mut cum = 0u64;
        for &(upper, n) in &h.buckets {
            cum += n;
            if upper == u64::MAX {
                continue; // folded into +Inf below
            }
            out.push_str(&format!("{p}_bucket{{le=\"{upper}\"}} {cum}\n"));
        }
        out.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{p}_sum {}\n{p}_count {}\n", h.sum, h.count));
    }
    for s in &metrics.sketches {
        let p = prometheus_name(&s.name);
        out.push_str(&format!("# HELP {p} "));
        prometheus_help(&mut out, &s.name);
        out.push('\n');
        out.push_str(&format!("# TYPE {p} summary\n"));
        for q in [0.5, 0.9, 0.99] {
            out.push_str(&format!("{p}{{quantile=\"{q}\"}} {}\n", s.quantile(q)));
        }
        out.push_str(&format!("{p}_sum {}\n{p}_count {}\n", s.sum, s.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::MetricsRegistry;

    fn sample_report() -> TelemetryReport {
        let reg = MetricsRegistry::new(true);
        reg.counter("a.count").add(7);
        reg.gauge("b.high_water").set_max(42);
        let h = reg.histogram("c.wall_us");
        h.record(3);
        h.record(900);
        let s = reg.sketch("d.lat_us");
        s.record(40);
        s.record(4000);
        TelemetryReport {
            metrics: reg.snapshot(),
            spans: vec![
                SpanEvent {
                    cat: "decode",
                    name: "piece",
                    parent: Some("analyze"),
                    args: vec![
                        ("idx", ArgValue::Int(0)),
                        ("who", ArgValue::Str("a\"b".into())),
                    ],
                    ts_us: 10,
                    dur_us: 5,
                    tid: 1,
                    sim: false,
                },
                SpanEvent {
                    cat: "collect",
                    name: "overflow",
                    parent: None,
                    args: vec![("core", ArgValue::Int(0))],
                    ts_us: 100,
                    dur_us: 50,
                    tid: 0,
                    sim: true,
                },
            ],
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_fields() {
        let r = sample_report();
        let doc = r.chrome_trace_json();
        validate(&doc).expect("chrome trace must parse");
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\":\"X\""));
        // Wall span on pid 1, simulated span on pid 2.
        assert!(doc.contains("\"pid\":1,\"tid\":1"));
        assert!(doc.contains("\"pid\":2,\"tid\":0"));
        // Escaped argument survived.
        assert!(doc.contains("a\\\"b"));
    }

    #[test]
    fn metrics_json_is_valid_and_flat() {
        let r = sample_report();
        let doc = r.metrics_json();
        validate(&doc).expect("metrics json must parse");
        assert!(doc.contains("\"a.count\":7"));
        assert!(doc.contains("\"b.high_water\":42"));
        assert!(doc.contains("\"count\":2"));
        assert!(doc.contains("\"sketches\":{\"d.lat_us\""));
        assert!(doc.contains("\"min\":40"));
        assert!(doc.contains("\"max\":4000"));
    }

    #[test]
    fn prometheus_text_has_all_families() {
        let r = sample_report();
        let text = prometheus_text(&r.metrics);
        assert!(text.contains("# TYPE jportal_a_count counter"));
        assert!(text.contains("jportal_a_count 7"));
        assert!(text.contains("# TYPE jportal_b_high_water gauge"));
        assert!(text.contains("# TYPE jportal_c_wall_us histogram"));
        assert!(text.contains("jportal_c_wall_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("jportal_c_wall_us_count 2"));
        assert!(text.contains("# TYPE jportal_d_lat_us summary"));
        assert!(text.contains("jportal_d_lat_us{quantile=\"0.99\"}"));
        // HELP carries the dotted original name.
        assert!(text.contains("# HELP jportal_a_count a.count"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn summary_table_lists_everything() {
        let r = sample_report();
        let t = r.summary_table();
        assert!(t.contains("a.count"));
        assert!(t.contains("b.high_water"));
        assert!(t.contains("c.wall_us"));
        assert!(t.contains("decode"));
        assert!(t.contains("collect"));
    }

    #[test]
    fn summary_table_shows_prune_rates_over_candidates() {
        let reg = MetricsRegistry::new(true);
        reg.counter("core.recover.candidates").add(200);
        reg.counter("core.recover.pruned_tier1").add(150);
        reg.counter("core.recover.pruned_tier2").add(30);
        let r = TelemetryReport {
            metrics: reg.snapshot(),
            spans: Vec::new(),
        };
        let t = r.summary_table();
        assert!(t.contains("75.0% of candidates"), "tier-1 rate:\n{t}");
        assert!(t.contains("15.0% of candidates"), "tier-2 rate:\n{t}");
        // Without the denominator the raw count renders unannotated.
        let reg2 = MetricsRegistry::new(true);
        reg2.counter("core.recover.pruned_tier1").add(150);
        let t2 = TelemetryReport {
            metrics: reg2.snapshot(),
            spans: Vec::new(),
        }
        .summary_table();
        assert!(!t2.contains("of candidates"));
    }

    #[test]
    fn categories_and_structure_are_sorted() {
        let r = sample_report();
        let cats: Vec<&str> = r.span_categories().into_iter().collect();
        assert_eq!(cats, vec!["collect", "decode"]);
        let s = r.span_structure();
        assert_eq!(s.len(), 2);
        assert!(s[0] < s[1]);
    }

    #[test]
    fn empty_report_renders() {
        let r = TelemetryReport::default();
        validate(&r.chrome_trace_json()).unwrap();
        validate(&r.metrics_json()).unwrap();
        assert!(r.summary_table().contains("disabled"));
    }
}
