//! The live telemetry plane: periodic snapshot publication for scrapers.
//!
//! A [`TelemetryPlane`] sits between the recording side (an [`Obs`]
//! handle whose instruments the pipeline updates) and the serving side
//! (the `obs::serve` listener and SSE stream). Producers call
//! [`TelemetryPlane::tick_stage`] at pipeline stage boundaries and
//! [`TelemetryPlane::tick_sim`] from per-core ring drains; each accepted
//! tick appends one point per metric to the windowed [`SeriesStore`] and
//! publishes an immutable [`PlaneSnapshot`] behind an `Arc`.
//!
//! Consumers never touch producer state: [`TelemetryPlane::latest`] is
//! an `Arc` clone under a momentary pointer-swap lock (no allocation, no
//! metric reads), so a slow scraper can never block the pipeline — it
//! only ever sees an older snapshot.
//!
//! # Tick model
//!
//! * **Stage ticks** fire on the pipeline's main thread at fixed stage
//!   boundaries — their count and order is a property of the pipeline,
//!   not of scheduling.
//! * **Sim ticks** fire from ring drains, throttled to one accepted tick
//!   per [`TelemetryConfig::sim_tick_interval`] simulation cycles. A
//!   *regressing* sim timestamp (a replay loop restarting its clock)
//!   resets the throttle window.
//! * In deterministic mode ([`TelemetryConfig::deterministic`]) every
//!   accepted tick is stamped with its logical tick index; otherwise
//!   with wall µs since plane creation. Under sim-time with a
//!   deterministic workload the entire stored series is bit-for-bit
//!   reproducible — the contract the determinism tests pin.

use crate::metrics::MetricsSnapshot;
use crate::profile::{ContentionCounter, Profiler};
use crate::series::{Series, SeriesStore};
use crate::Obs;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of the live telemetry plane.
///
/// `Copy` so it can ride inside copyable pipeline configs. Serving is
/// not configured here — binding a listener is an explicit act
/// (`TelemetryServer::bind`), never a side effect of a config value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Points retained per metric series (oldest evicted first).
    pub series_capacity: usize,
    /// Minimum simulation-cycle distance between accepted sim ticks.
    pub sim_tick_interval: u64,
    /// Stamp ticks with their logical index instead of wall µs, making
    /// stored series reproducible across runs and worker counts.
    pub deterministic: bool,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            series_capacity: 240,
            sim_tick_interval: 10_000,
            deterministic: false,
        }
    }
}

/// One published, immutable view of the plane: the full metrics snapshot
/// plus every windowed series, as of tick `seq`.
#[derive(Debug, Clone, Default)]
pub struct PlaneSnapshot {
    /// Tick sequence number (1 = first published snapshot).
    pub seq: u64,
    /// Stamp of the publishing tick (logical index or wall µs — see the
    /// module docs).
    pub ts: u64,
    /// Point-in-time metrics at the tick.
    pub metrics: MetricsSnapshot,
    /// Windowed series, sorted by qualified name.
    pub series: Vec<Series>,
}

impl PlaneSnapshot {
    /// The series with this qualified name (`counter.*` / `gauge.*`).
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series
            .binary_search_by(|s| s.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.series[i])
    }
}

#[derive(Debug)]
struct PlaneProducer {
    store: SeriesStore,
    /// Raw sim timestamp of the last *accepted* sim tick.
    last_sim_raw: Option<u64>,
}

/// The live telemetry plane (see module docs).
#[derive(Debug)]
pub struct TelemetryPlane {
    obs: Obs,
    cfg: TelemetryConfig,
    epoch: Instant,
    producer: Mutex<PlaneProducer>,
    published: Mutex<Arc<PlaneSnapshot>>,
    changed: Condvar,
    /// Contention accounting for the producer lock (`lock.obs.plane.producer.*`).
    producer_cc: ContentionCounter,
    /// Contention accounting for the publish pointer-swap lock
    /// (`lock.obs.plane.publish.*`).
    publish_cc: ContentionCounter,
    /// Attached self-profiler, if any; a deterministic one is sampled
    /// at every accepted tick, and the serve layer exposes it under
    /// `/profile/*`.
    profiler: Mutex<Option<Arc<Profiler>>>,
}

impl TelemetryPlane {
    /// A plane recording through `obs` (which should be enabled — a
    /// disabled handle publishes empty snapshots).
    pub fn new(obs: Obs, cfg: TelemetryConfig) -> Arc<TelemetryPlane> {
        let producer_cc = ContentionCounter::register(obs.registry(), "lock.obs.plane.producer");
        let publish_cc = ContentionCounter::register(obs.registry(), "lock.obs.plane.publish");
        Arc::new(TelemetryPlane {
            obs,
            cfg,
            epoch: Instant::now(),
            producer: Mutex::new(PlaneProducer {
                store: SeriesStore::new(cfg.series_capacity),
                last_sim_raw: None,
            }),
            published: Mutex::new(Arc::new(PlaneSnapshot::default())),
            changed: Condvar::new(),
            producer_cc,
            publish_cc,
            profiler: Mutex::new(None),
        })
    }

    /// Attaches a self-profiler: deterministic profilers get sampled at
    /// every accepted tick, and `/profile/*` endpoints start serving.
    pub fn attach_profiler(&self, profiler: Arc<Profiler>) {
        *self.profiler.lock().unwrap() = Some(profiler);
    }

    /// The attached self-profiler, if any.
    pub fn profiler(&self) -> Option<Arc<Profiler>> {
        self.profiler.lock().unwrap().clone()
    }

    /// The recording handle whose instruments feed this plane.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The plane's configuration.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// Ticks unconditionally — called from pipeline stage boundaries on
    /// the main thread, so count and order are deterministic.
    pub fn tick_stage(&self) {
        let mut p = self.producer_cc.lock(&self.producer);
        self.tick_locked(&mut p);
    }

    /// Offers a sim-time tick (e.g. from a per-core ring drain at
    /// simulation timestamp `ts`); accepted only when at least
    /// `sim_tick_interval` cycles have passed since the last accepted
    /// one. Returns whether the tick was accepted.
    pub fn tick_sim(&self, ts: u64) -> bool {
        let mut p = self.producer_cc.lock(&self.producer);
        let accept = match p.last_sim_raw {
            None => true,
            // A regression means a replay loop restarted its sim clock.
            Some(last) => ts < last || ts - last >= self.cfg.sim_tick_interval,
        };
        if accept {
            p.last_sim_raw = Some(ts);
            self.tick_locked(&mut p);
        }
        accept
    }

    fn tick_locked(&self, p: &mut PlaneProducer) {
        // Logical-tick-driven sampling: a deterministic profiler takes
        // one sample of the ticking thread's span stack per accepted
        // tick, making the profile a pure function of the tick stream.
        if let Some(profiler) = &*self.profiler.lock().unwrap() {
            if profiler.config().deterministic {
                profiler.sample_now();
            }
        }
        let stamp = if self.cfg.deterministic {
            p.store.ticks()
        } else {
            self.epoch.elapsed().as_micros() as u64
        };
        let metrics = self.obs.registry().snapshot();
        p.store.tick(stamp, &metrics);
        let snap = Arc::new(PlaneSnapshot {
            seq: p.store.ticks(),
            ts: stamp,
            metrics,
            series: p.store.all(),
        });
        *self.publish_cc.lock(&self.published) = snap;
        self.changed.notify_all();
    }

    /// Number of accepted ticks so far.
    pub fn ticks(&self) -> u64 {
        self.producer.lock().unwrap().store.ticks()
    }

    /// The most recently published snapshot (an `Arc` clone — the
    /// consumer-side fast path; never reads a live instrument).
    pub fn latest(&self) -> Arc<PlaneSnapshot> {
        Arc::clone(&self.publish_cc.lock(&self.published))
    }

    /// Blocks until a snapshot with `seq > after` is published or the
    /// timeout elapses; the SSE stream's wait primitive. Only the
    /// initial acquisition is contention-accounted; condvar re-wakes
    /// reacquire uninstrumented.
    pub fn wait_newer(&self, after: u64, timeout: Duration) -> Option<Arc<PlaneSnapshot>> {
        let deadline = Instant::now() + timeout;
        let mut published = self.publish_cc.lock(&self.published);
        loop {
            if published.seq > after {
                return Some(Arc::clone(&published));
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            let (guard, res) = self.changed.wait_timeout(published, left).unwrap();
            published = guard;
            if res.timed_out() && published.seq <= after {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_plane() -> (Arc<TelemetryPlane>, crate::Counter) {
        let obs = Obs::new(true);
        let c = obs.registry().counter("work");
        let plane = TelemetryPlane::new(
            obs,
            TelemetryConfig {
                deterministic: true,
                sim_tick_interval: 100,
                ..TelemetryConfig::default()
            },
        );
        (plane, c)
    }

    #[test]
    fn stage_ticks_publish_snapshots() {
        let (plane, c) = det_plane();
        assert_eq!(plane.latest().seq, 0);
        c.add(5);
        plane.tick_stage();
        c.add(3);
        plane.tick_stage();
        let snap = plane.latest();
        assert_eq!(snap.seq, 2);
        assert_eq!(snap.metrics.counter("work"), Some(8));
        let s = snap.series("counter.work").unwrap();
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[1].delta, 3);
        // Deterministic stamps are logical tick indices.
        assert_eq!(s.points[0].ts, 0);
        assert_eq!(s.points[1].ts, 1);
    }

    #[test]
    fn sim_ticks_throttle_and_reset_on_regression() {
        let (plane, _c) = det_plane();
        assert!(plane.tick_sim(1000));
        assert!(!plane.tick_sim(1050), "inside the interval");
        assert!(plane.tick_sim(1100), "interval elapsed");
        // Replay loop restarted its sim clock: accepted.
        assert!(plane.tick_sim(10));
        assert_eq!(plane.ticks(), 3);
    }

    #[test]
    fn wait_newer_wakes_on_publish() {
        let (plane, _c) = det_plane();
        assert!(plane.wait_newer(0, Duration::from_millis(10)).is_none());
        let p2 = Arc::clone(&plane);
        let waiter = std::thread::spawn(move || p2.wait_newer(0, Duration::from_secs(5)));
        // Publish from this thread; the waiter must observe it.
        std::thread::sleep(Duration::from_millis(20));
        plane.tick_stage();
        let got = waiter.join().unwrap().expect("waiter saw the publish");
        assert_eq!(got.seq, 1);
    }

    #[test]
    fn consumers_see_immutable_snapshots() {
        let (plane, c) = det_plane();
        c.add(1);
        plane.tick_stage();
        let old = plane.latest();
        c.add(41);
        plane.tick_stage();
        // The earlier Arc still reads the old values.
        assert_eq!(old.metrics.counter("work"), Some(1));
        assert_eq!(plane.latest().metrics.counter("work"), Some(42));
    }
}
