//! Scoped spans: wall-time intervals with category, arguments and
//! logical parent/child structure, recorded into per-worker buffers.
//!
//! A [`SpanGuard`] measures from creation to drop and appends one
//! [`SpanEvent`] to a thread-striped buffer shard (one short lock per
//! span *end*, never per operation inside the span). Each OS thread gets
//! a stable track id, so the Chrome exporter can draw one lane per
//! worker thread.
//!
//! Parent/child structure is logical, not thread-ancestry: a span's
//! parent defaults to the innermost open span **on the same thread**,
//! and spans created inside parallel fan-outs pass their logical parent
//! explicitly ([`SpanBuilderExt::parent`]) so the recorded tree is
//! identical whether the stage ran inline or on worker threads. Timing
//! fields are the only scheduling-dependent data in an event.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::Histogram;
use crate::profile::ContentionCounter;
use crate::sketch::Sketch;

/// A span argument value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArgValue {
    /// Integer argument.
    Int(i64),
    /// String argument.
    Str(String),
}

impl std::fmt::Display for ArgValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgValue::Int(v) => write!(f, "{v}"),
            ArgValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> ArgValue {
        ArgValue::Int(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::Int(v as i64)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::Int(v as i64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> ArgValue {
        ArgValue::Int(v as i64)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Category (Chrome trace `cat`; e.g. `"decode"`, `"recover"`).
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Logical parent span name, if any.
    pub parent: Option<&'static str>,
    /// Arguments, in the order they were attached.
    pub args: Vec<(&'static str, ArgValue)>,
    /// Start, µs since the collector's epoch (simulated cycles for
    /// simulated-time events).
    pub ts_us: u64,
    /// Duration in the same unit as [`SpanEvent::ts_us`].
    pub dur_us: u64,
    /// Track: the recording OS thread's stable id (wall spans) or a
    /// caller-chosen lane (simulated spans).
    pub tid: u32,
    /// `true` for events on the simulated-time track (timestamps are
    /// simulation cycles, not wall µs).
    pub sim: bool,
}

impl SpanEvent {
    /// A stable, timing-free description of the span: category, logical
    /// parent, name and arguments. Two runs of the same workload produce
    /// the same multiset of structure strings regardless of worker
    /// count.
    pub fn structure(&self) -> String {
        let mut s = format!("{}/{}/{}", self.cat, self.parent.unwrap_or("-"), self.name);
        if !self.args.is_empty() {
            s.push('{');
            for (i, (k, v)) in self.args.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(k);
                s.push('=');
                s.push_str(&v.to_string());
            }
            s.push('}');
        }
        s
    }
}

/// Buffer shard count (power of two; threads stripe over shards).
const SPAN_SHARDS: usize = 16;

/// Stable per-OS-thread track id, assigned on first use.
fn thread_track() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(1);
    thread_local! {
        static TRACK: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TRACK.with(|t| *t)
}

thread_local! {
    /// Innermost-open-span stack of the current thread (names only; the
    /// default parent of a new span).
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Collects finished spans from all threads.
#[derive(Debug)]
pub struct SpanCollector {
    shards: Vec<Mutex<Vec<SpanEvent>>>,
    epoch: Instant,
    /// Contention accounting over the shard mutexes (`lock.obs.spans.*`
    /// when wired by `Obs`; noop by default).
    contention: ContentionCounter,
}

impl SpanCollector {
    /// An empty collector; wall timestamps count from now.
    pub fn new() -> SpanCollector {
        SpanCollector {
            shards: (0..SPAN_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            epoch: Instant::now(),
            contention: ContentionCounter::noop(),
        }
    }

    /// Wire contention accounting for the shard locks.
    pub fn set_contention(&mut self, contention: ContentionCounter) {
        self.contention = contention;
    }

    /// µs elapsed since the collector's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Appends a finished event (thread-striped).
    pub fn push(&self, event: SpanEvent) {
        let shard = thread_track() as usize % SPAN_SHARDS;
        self.contention.lock(&self.shards[shard]).push(event);
    }

    /// All recorded events, merged deterministically: sorted by the
    /// timing-free structure key first, then by timestamp — so the order
    /// of equal-structure spans is stable across worker counts except
    /// where wall time itself differs.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        // One allocation for the merged vector: size it from a first
        // pass over the shard lengths instead of growing per shard.
        let total: usize = self
            .shards
            .iter()
            .map(|s| self.contention.lock(s).len())
            .sum();
        let mut all: Vec<SpanEvent> = Vec::with_capacity(total);
        for shard in &self.shards {
            all.extend(self.contention.lock(shard).iter().cloned());
        }
        all.sort_by(|a, b| {
            a.structure()
                .cmp(&b.structure())
                .then(a.ts_us.cmp(&b.ts_us))
        });
        all
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| self.contention.lock(s).len())
            .sum()
    }

    #[cfg(test)]
    fn shard_lens(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().len())
            .collect()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SpanCollector {
    fn default() -> SpanCollector {
        SpanCollector::new()
    }
}

/// An open span; records one [`SpanEvent`] when dropped.
///
/// Created via `Obs::span` (or the `span!` macro). A disabled `Obs`
/// produces an inert guard: creation and drop are a branch each.
pub struct SpanGuard<'c> {
    /// `None` when observability is disabled.
    collector: Option<&'c SpanCollector>,
    cat: &'static str,
    name: &'static str,
    parent: Option<&'static str>,
    args: Vec<(&'static str, ArgValue)>,
    start: Option<Instant>,
    start_us: u64,
    /// Optional histogram receiving the duration in µs on drop.
    dur_histogram: Option<Histogram>,
    /// Optional quantile sketch receiving the duration in µs on drop.
    dur_sketch: Option<Sketch>,
    /// `true` when this span was pushed onto the thread's profiler
    /// [`crate::profile::ActiveStack`]; the drop must pop it back off.
    profiled: bool,
}

impl<'c> SpanGuard<'c> {
    /// An inert guard (disabled observability).
    pub fn inert() -> SpanGuard<'static> {
        SpanGuard {
            collector: None,
            cat: "",
            name: "",
            parent: None,
            args: Vec::new(),
            start: None,
            start_us: 0,
            dur_histogram: None,
            dur_sketch: None,
            profiled: false,
        }
    }

    /// Opens a span on `collector`. The default parent is the innermost
    /// span currently open on this thread.
    pub fn open(
        collector: &'c SpanCollector,
        cat: &'static str,
        name: &'static str,
    ) -> SpanGuard<'c> {
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(name);
            parent
        });
        // Maintain the sampler-visible active stack only while a
        // profiler is live: one relaxed load otherwise.
        let profiled = crate::profile::profiling_active();
        if profiled {
            crate::profile::stack_push(cat, name);
        }
        SpanGuard {
            collector: Some(collector),
            cat,
            name,
            parent,
            args: Vec::new(),
            start: Some(Instant::now()),
            start_us: collector.now_us(),
            dur_histogram: None,
            dur_sketch: None,
            profiled,
        }
    }

    /// Attaches an argument (builder-style).
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> SpanGuard<'c> {
        if self.collector.is_some() {
            self.args.push((key, value.into()));
        }
        self
    }

    /// Overrides the logical parent. Spans created inside parallel
    /// fan-outs use this so the recorded tree does not depend on which
    /// thread ran the stage.
    pub fn parent(mut self, parent: &'static str) -> SpanGuard<'c> {
        if self.collector.is_some() {
            self.parent = Some(parent);
        }
        self
    }

    /// Also records the span's duration (µs) into `h` on drop.
    pub fn record_dur(mut self, h: &Histogram) -> SpanGuard<'c> {
        if self.collector.is_some() {
            self.dur_histogram = Some(h.clone());
        }
        self
    }

    /// Also records the span's duration (µs) into quantile sketch `s`
    /// on drop — the percentile-grade sibling of [`Self::record_dur`].
    pub fn record_sketch(mut self, s: &Sketch) -> SpanGuard<'c> {
        if self.collector.is_some() {
            self.dur_sketch = Some(s.clone());
        }
        self
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(collector) = self.collector else {
            return;
        };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            debug_assert_eq!(s.last().copied(), Some(self.name), "spans drop LIFO");
            s.pop();
        });
        if self.profiled {
            crate::profile::stack_pop();
        }
        let dur_us = self
            .start
            .map(|t| t.elapsed().as_micros() as u64)
            .unwrap_or(0);
        if let Some(h) = &self.dur_histogram {
            h.record(dur_us);
        }
        if let Some(s) = &self.dur_sketch {
            s.record(dur_us);
        }
        collector.push(SpanEvent {
            cat: self.cat,
            name: self.name,
            parent: self.parent,
            args: std::mem::take(&mut self.args),
            ts_us: self.start_us,
            dur_us,
            tid: thread_track(),
            sim: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_nesting_and_args() {
        let c = SpanCollector::new();
        {
            let _outer = SpanGuard::open(&c, "pipeline", "analyze");
            let _inner = SpanGuard::open(&c, "decode", "piece").arg("idx", 3u64);
        }
        let events = c.snapshot();
        assert_eq!(events.len(), 2);
        let inner = events.iter().find(|e| e.name == "piece").unwrap();
        assert_eq!(inner.parent, Some("analyze"));
        assert_eq!(inner.structure(), "decode/analyze/piece{idx=3}");
        let outer = events.iter().find(|e| e.name == "analyze").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(outer.structure(), "pipeline/-/analyze");
    }

    #[test]
    fn explicit_parent_overrides_thread_stack() {
        let c = SpanCollector::new();
        {
            let _s = SpanGuard::open(&c, "decode", "piece").parent("analyze");
        }
        assert_eq!(c.snapshot()[0].parent, Some("analyze"));
    }

    #[test]
    fn inert_guard_records_nothing() {
        let c = SpanCollector::new();
        {
            let _g = SpanGuard::inert().arg("k", 1u64).parent("p");
        }
        assert!(c.is_empty());
    }

    #[test]
    fn cross_thread_spans_merge_deterministically() {
        let c = SpanCollector::new();
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    let _g = SpanGuard::open(c, "work", "unit")
                        .arg("i", i)
                        .parent("root");
                });
            }
        });
        let structures: Vec<String> = c.snapshot().iter().map(|e| e.structure()).collect();
        assert_eq!(
            structures,
            vec![
                "work/root/unit{i=0}",
                "work/root/unit{i=1}",
                "work/root/unit{i=2}",
                "work/root/unit{i=3}",
            ]
        );
    }

    #[test]
    fn record_dur_feeds_histogram() {
        let c = SpanCollector::new();
        let reg = crate::MetricsRegistry::new(true);
        let h = reg.histogram("span.wall_us");
        {
            let _g = SpanGuard::open(&c, "x", "y").record_dur(&h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn record_sketch_feeds_sketch() {
        let c = SpanCollector::new();
        let reg = crate::MetricsRegistry::new(true);
        let s = reg.sketch("span.wall_us");
        {
            let _g = SpanGuard::open(&c, "x", "y").record_sketch(&s);
        }
        assert_eq!(s.count(), 1);
    }

    /// Pushes from distinct threads must stripe across *all* 16 shards.
    /// Track ids are process-global and other tests spawn threads
    /// concurrently, so spawn until every shard residue has been hit
    /// (a bounded number of attempts: ids are assigned sequentially).
    #[test]
    fn pushes_spread_across_all_shards() {
        let c = SpanCollector::new();
        for _ in 0..64 {
            std::thread::scope(|s| {
                for _ in 0..SPAN_SHARDS {
                    s.spawn(|| {
                        let _g = SpanGuard::open(&c, "work", "unit");
                    });
                }
            });
            if c.shard_lens().iter().all(|&n| n > 0) {
                break;
            }
        }
        let lens = c.shard_lens();
        assert!(
            lens.iter().all(|&n| n > 0),
            "expected pushes in every shard, got {lens:?}"
        );
        assert_eq!(lens.iter().sum::<usize>(), c.len());
    }

    /// The collector's shard locks feed the wired contention counter on
    /// push, snapshot and len.
    #[test]
    fn collector_contention_counter_is_fed() {
        let reg = crate::MetricsRegistry::new(true);
        let mut c = SpanCollector::new();
        c.set_contention(ContentionCounter::register(&reg, "lock.obs.spans"));
        {
            let _g = SpanGuard::open(&c, "x", "y");
        }
        let _ = c.snapshot();
        let snap = reg.snapshot();
        // 1 push + 16 len locks + 16 extend locks in snapshot.
        assert_eq!(snap.counter("lock.obs.spans.acquires"), Some(33));
    }
}
