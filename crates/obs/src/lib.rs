//! `jportal-obs` — zero-dependency telemetry for the JPortal pipeline.
//!
//! JPortal's business is tracing *other* programs; this crate lets the
//! pipeline trace itself. Three pieces, matching the in-tree
//! shim philosophy (no external dependencies anywhere):
//!
//! * a [`MetricsRegistry`] of sharded atomic counters, gauges and
//!   fixed-bucket histograms, cheap enough to stay enabled in
//!   production;
//! * scoped spans ([`span!`] / [`Obs::span`]) recording wall time and
//!   logical parent/child structure into per-worker buffers that merge
//!   deterministically;
//! * exporters ([`TelemetryReport`]): Chrome trace-event JSON (loadable
//!   in `chrome://tracing` / Perfetto), a flat JSON metrics snapshot and
//!   a human-readable summary table.
//!
//! Everything hangs off an [`Obs`] handle (a cheap `Arc` clone). A
//! disabled handle's instruments are no-ops whose fast path is a single
//! branch — no allocation, no atomics — so call sites stay
//! unconditional even on hot paths.
//!
//! # Examples
//!
//! ```
//! use jportal_obs::{span, Obs};
//!
//! let obs = Obs::new(true);
//! let segments = obs.registry().counter("pipeline.segments");
//! {
//!     let _s = span!(obs, "decode", "segment", core = 0u32);
//!     segments.incr();
//! }
//! let report = obs.telemetry();
//! assert_eq!(report.metrics.counter("pipeline.segments"), Some(1));
//! assert!(report.chrome_trace_json().contains("\"cat\":\"decode\""));
//! ```

pub mod export;
pub mod flame;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod plane;
pub mod profile;
pub mod series;
pub mod serve;
pub mod sketch;
pub mod span;

pub use export::{
    metrics_snapshot_json, metrics_snapshot_json_with_profile, prometheus_text, TelemetryReport,
};
pub use flame::flame_svg;
pub use journal::{
    CandidateOutcome, Journal, JournalEvent, JournalKey, JournalRecord, JournalRecorder,
    JournalSnapshot,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use plane::{PlaneSnapshot, TelemetryConfig, TelemetryPlane};
pub use profile::{ContentionCounter, ProfileConfig, ProfileSnapshot, Profiler, PROFILE_MAX_DEPTH};
pub use series::{Series, SeriesPoint, SeriesStore};
pub use serve::{
    http_get, parse_request, sse_frame, sse_keepalive_frame, HttpResponse, Request, TelemetryServer,
};
pub use sketch::{
    Sketch, SketchSnapshot, SKETCH_BUCKETS, SKETCH_LINEAR_MAX, SKETCH_MAX_RELATIVE_ERROR,
    SKETCH_SUBBUCKETS,
};
pub use span::{ArgValue, SpanCollector, SpanEvent, SpanGuard};

use std::sync::Arc;

#[derive(Debug)]
struct ObsInner {
    enabled: bool,
    registry: MetricsRegistry,
    spans: SpanCollector,
    journal: Journal,
}

/// The telemetry handle: a registry plus a span collector behind one
/// cheaply-cloneable `Arc`.
#[derive(Debug, Clone)]
pub struct Obs(Arc<ObsInner>);

impl Obs {
    /// A new handle; `enabled = false` makes every instrument a no-op.
    pub fn new(enabled: bool) -> Obs {
        Obs::with_journal_capacity(enabled, journal::DEFAULT_JOURNAL_CAPACITY)
    }

    /// A new handle with an explicit decision-journal ring capacity
    /// (tests exercise the drop counter with tiny rings).
    pub fn with_journal_capacity(enabled: bool, capacity: usize) -> Obs {
        let registry = MetricsRegistry::new(enabled);
        let mut spans = SpanCollector::new();
        // Disabled registries hand out noop handles, so this wiring is
        // free in dark mode.
        spans.set_contention(ContentionCounter::register(&registry, "lock.obs.spans"));
        Obs(Arc::new(ObsInner {
            enabled,
            registry,
            spans,
            journal: Journal::with_capacity(capacity),
        }))
    }

    /// A handle that records nothing.
    pub fn disabled() -> Obs {
        Obs::new(false)
    }

    /// Whether instruments record anything.
    pub fn is_enabled(&self) -> bool {
        self.0.enabled
    }

    /// The metric registry (hands out no-op instruments when disabled).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.0.registry
    }

    /// Opens a wall-time span; the returned guard records on drop.
    /// Inert (branch-only) when disabled.
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard<'_> {
        if self.0.enabled {
            SpanGuard::open(&self.0.spans, cat, name)
        } else {
            SpanGuard::inert()
        }
    }

    /// Records a complete event on the **simulated-time** track (`ts` and
    /// `dur` are simulation cycles, `lane` picks the row — e.g. the core
    /// id). Used for telemetry reconstructed from collected data, like PT
    /// overflow windows.
    pub fn sim_event(
        &self,
        cat: &'static str,
        name: &'static str,
        lane: u32,
        ts: u64,
        dur: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.0.enabled {
            return;
        }
        self.0.spans.push(SpanEvent {
            cat,
            name,
            parent: None,
            args,
            ts_us: ts,
            dur_us: dur,
            tid: lane,
            sim: true,
        });
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.0.spans.len()
    }

    /// The decision journal (flight recorder).
    pub fn journal(&self) -> &Journal {
        &self.0.journal
    }

    /// A journal recorder bound to `thread`: the single-producer handle
    /// reconstruction stages emit decisions through. Inert (one branch
    /// per emit) when the handle is disabled.
    pub fn journal_recorder(&self, thread: u32) -> JournalRecorder<'_> {
        Journal::recorder(self.0.enabled.then_some(&self.0.journal), thread)
    }

    /// Deterministic snapshot of the decision journal.
    pub fn journal_snapshot(&self) -> JournalSnapshot {
        self.0.journal.snapshot()
    }

    /// Snapshot of everything recorded so far: metrics plus
    /// deterministically-merged spans, ready for export.
    pub fn telemetry(&self) -> TelemetryReport {
        TelemetryReport {
            metrics: self.0.registry.snapshot(),
            spans: self.0.spans.snapshot(),
        }
    }
}

impl Default for Obs {
    /// Enabled by default — the instruments are cheap enough to stay on.
    fn default() -> Obs {
        Obs::new(true)
    }
}

/// Opens a scoped span on an [`Obs`] handle with optional `key = value`
/// arguments. Expands to a guard expression; bind it (`let _s = ...`) so
/// the span covers the intended scope.
///
/// ```
/// use jportal_obs::{span, Obs};
/// let obs = Obs::new(true);
/// let _s = span!(obs, "recover", "fill_hole", thread = 0u32, hole = 3usize);
/// ```
#[macro_export]
macro_rules! span {
    ($obs:expr, $cat:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut __span = $obs.span($cat, $name);
        $(__span = __span.arg(stringify!($k), $v);)*
        __span
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_handle_records_spans_and_metrics() {
        let obs = Obs::new(true);
        obs.registry().counter("c").add(2);
        {
            let _s = span!(obs, "decode", "piece", idx = 1usize);
        }
        obs.sim_event(
            "collect",
            "overflow",
            0,
            100,
            20,
            vec![("core", 0u32.into())],
        );
        let report = obs.telemetry();
        assert_eq!(report.metrics.counter("c"), Some(2));
        assert_eq!(report.spans.len(), 2);
        let cats = report.span_categories();
        assert!(cats.contains("decode") && cats.contains("collect"));
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        obs.registry().counter("c").add(2);
        {
            let _s = span!(obs, "decode", "piece", idx = 1usize);
        }
        obs.sim_event("collect", "overflow", 0, 100, 20, Vec::new());
        let report = obs.telemetry();
        assert!(report.metrics.counters.is_empty());
        assert!(report.spans.is_empty());
        assert_eq!(obs.span_count(), 0);
        let mut rec = obs.journal_recorder(0);
        rec.emit(JournalEvent::HoleUnfilled { hole: 1 });
        assert!(obs.journal().is_empty());
    }

    #[test]
    fn journal_recorder_feeds_the_shared_journal() {
        let obs = Obs::new(true);
        let mut rec = obs.journal_recorder(3);
        rec.emit(JournalEvent::HoleUnfilled { hole: 1 });
        let snap = obs.journal_snapshot();
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].key.thread, 3);
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::new(true);
        let other = obs.clone();
        other.registry().counter("shared").incr();
        assert_eq!(obs.telemetry().metrics.counter("shared"), Some(1));
    }
}
