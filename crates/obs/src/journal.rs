//! The flight recorder: a bounded, deterministic decision journal.
//!
//! Metrics say *how much* the pipeline did and spans say *how long* it
//! took; the journal says **why** — per thread and per hole, the typed
//! reconstruction/recovery decisions that produced the report: which
//! candidate complete segments were considered for a hole, at which
//! abstraction tier each one was rejected, what the winner scored and by
//! what margin, when the random-walk fallback was taken, and where the
//! feasibility linter broke the timeline.
//!
//! Three properties make the journal usable as a debugging contract:
//!
//! * **Deterministic.** Events carry no wall-clock data. Each record is
//!   keyed by `(thread, segment, seq)` where `seq` is the emission order
//!   within that key's (single-threaded) producer, and
//!   [`Journal::snapshot`] sorts by key — so the snapshot is
//!   byte-identical at any `parallelism` setting as long as nothing was
//!   dropped.
//! * **Bounded.** The journal is a ring of fixed capacity. A push beyond
//!   capacity is *dropped* (drop-newest) and counted exactly:
//!   `dropped == max(0, total_pushes - capacity)` under any
//!   interleaving. A snapshot with `dropped > 0` is truncated in a
//!   scheduling-dependent way — the counter is the signal to re-run with
//!   a larger capacity.
//! * **Branch-only when off.** A disabled handle's recorder holds no
//!   journal reference; every emit is one branch on an `Option`.
//!
//! The JSONL export ([`JournalSnapshot::to_jsonl`]) writes one record
//! per line with a fixed field order, so two runs can be diffed at the
//! decision level (`jportal-inspect diff`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::json::{self, Value};

/// Sort key of a journal record.
///
/// `segment` is producer-scoped: the piece index for projection events,
/// the compacted incomplete-segment index for recovery events, and
/// [`LINT_SEGMENT`] for lint events (so they sort after the per-segment
/// story of their thread). `seq` is the emission order within the key's
/// single-threaded producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JournalKey {
    /// Thread the decision concerned.
    pub thread: u32,
    /// Producer-scoped segment index.
    pub segment: u32,
    /// Emission order within `(thread, segment)`.
    pub seq: u32,
}

/// `segment` value used for whole-timeline events (lint breaks): sorts
/// after every real segment index.
pub const LINT_SEGMENT: u32 = u32::MAX;

/// How a considered candidate left the ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CandidateOutcome {
    /// Rejected by the tier-1 (call-structure) comparison.
    PrunedTier1,
    /// Rejected by the tier-2 (control-structure) comparison.
    PrunedTier2,
    /// Survived to the tier-3 (concrete) comparison and was scored.
    Scored,
}

impl CandidateOutcome {
    fn as_str(self) -> &'static str {
        match self {
            CandidateOutcome::PrunedTier1 => "pruned_tier1",
            CandidateOutcome::PrunedTier2 => "pruned_tier2",
            CandidateOutcome::Scored => "scored",
        }
    }
}

/// One typed reconstruction/recovery decision.
///
/// Every field is simulation-derived (timestamps are simulated cycles,
/// scores are symbol counts): nothing here depends on wall time or
/// worker scheduling.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum JournalEvent {
    /// One decoded segment was projected onto the ICFG (§4).
    SegmentMatched {
        /// Decoded events in the segment.
        events: u32,
        /// Events that received an ICFG node.
        matched: u32,
        /// Restart seams (subsequence boundaries) hit.
        restarts: u32,
        /// Peak NFA frontier width over the segment's matched runs.
        frontier_width: u32,
        /// Candidate start states examined (ambiguity count).
        candidates_tried: u32,
        /// Candidates rejected by the abstract (tabled-DFA) filter.
        candidates_pruned: u32,
        /// `true` when the abstraction-guided start filter ran (the DFA
        /// path); `false` for the plain reference path.
        dfa_path: bool,
    },
    /// Recovery opened a hole after an incomplete segment (§5).
    HoleOpened {
        /// Hole index within the thread (1-based, matching
        /// `ThreadReport::holes` order).
        hole: u32,
        /// Loss window start (simulated cycles).
        first_ts: u64,
        /// Loss window end (simulated cycles).
        last_ts: u64,
        /// Anchor length `x` in use.
        anchor_len: u32,
        /// The anchor's opcode spelling (e.g. `"iload·ifeq·iadd"`).
        anchor: String,
        /// Timestamp-derived event budget for the fill.
        budget: u64,
    },
    /// One candidate CS position was considered for the current hole.
    CandidateConsidered {
        /// Hole index (as in [`JournalEvent::HoleOpened`]).
        hole: u32,
        /// Consideration order (0-based; the anchor index's deterministic
        /// candidate order).
        rank: u32,
        /// Segment the candidate lives in.
        cs_segment: u32,
        /// Anchor-end offset within that segment.
        offset: u32,
        /// Tier outcome.
        outcome: CandidateOutcome,
        /// Longest-common-suffix score: the tier-3 (concrete) LCS for
        /// scored candidates, the failing tier's capped measurement for
        /// pruned ones.
        score: u32,
    },
    /// The per-hole candidate-event cap was hit; `count` further
    /// candidates were considered but not journaled individually (their
    /// statistics still land in `RecoveryStats`). Deterministic: always
    /// the tail of the per-hole consideration order.
    CandidatesElided {
        /// Hole index.
        hole: u32,
        /// Candidates considered beyond the cap.
        count: u32,
    },
    /// A candidate CS won the ranking and its suffix filled the hole.
    CandidateChosen {
        /// Hole index.
        hole: u32,
        /// Winning candidate's segment.
        cs_segment: u32,
        /// Winning candidate's anchor-end offset.
        offset: u32,
        /// Winner's concrete LCS score.
        score: u32,
        /// Runner-up's score (0 when the winner was the only survivor).
        runner_up: u32,
        /// `score - runner_up`.
        margin: u32,
        /// Entries spliced into the hole.
        fill_len: u32,
        /// Timestamp-derived budget the splice scan ran under.
        budget: u64,
        /// `true` when the budget was smaller than the candidate's
        /// available suffix — the confirm scan could not see the whole
        /// suffix, so the splice may have been budget-truncated.
        truncated: bool,
        /// Fill confidence in parts-per-million (see
        /// `jportal-core::recover`'s confidence formula).
        confidence_ppm: u32,
    },
    /// No candidate confirmed; the bounded ICFG walk filled the hole.
    FallbackWalk {
        /// Hole index.
        hole: u32,
        /// Entries the walk produced.
        fill_len: u32,
        /// Fill confidence in parts-per-million.
        confidence_ppm: u32,
    },
    /// Neither a CS nor the walk could fill the hole.
    HoleUnfilled {
        /// Hole index.
        hole: u32,
    },
    /// The interprocedural summary table prefiltered this hole's
    /// candidate set before LCS ranking (emitted only when summaries
    /// are enabled and the hole had candidates).
    SummaryPrefilter {
        /// Hole index.
        hole: u32,
        /// Candidates before the prefilter.
        considered: u32,
        /// Candidates rejected as summary-incompatible.
        pruned: u32,
    },
    /// Recovery consulted the persistent segment corpus for a hole no
    /// in-run candidate could confirm (emitted only when a corpus is
    /// attached; see `jportal-corpus`).
    CorpusLookup {
        /// Hole index.
        hole: u32,
        /// Corpus candidates returned by the sharded anchor index.
        candidates: u32,
        /// `true` when a corpus candidate confirmed and filled the hole.
        hit: bool,
        /// Winning corpus segment (0 on a miss).
        cs_segment: u32,
        /// Winner's SWAR common-suffix score (0 on a miss).
        score: u32,
        /// Entries spliced into the hole (0 on a miss).
        fill_len: u32,
        /// Fill confidence in parts-per-million (0 on a miss).
        confidence_ppm: u32,
    },
    /// The feasibility linter reported a break in this thread's
    /// reconstructed timeline.
    LintBreak {
        /// Diagnostic kind (`"missing-edge"`, `"op-mismatch"`, ...).
        kind: String,
        /// Step index within the linted timeline.
        index: u64,
        /// Detail string of the diagnostic.
        detail: String,
    },
}

/// A field value in the journal's flat wire representation.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldVal {
    /// Unsigned integer.
    Int(u64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl std::fmt::Display for FieldVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldVal::Int(v) => write!(f, "{v}"),
            FieldVal::Bool(v) => write!(f, "{v}"),
            FieldVal::Str(s) => write!(f, "{s}"),
        }
    }
}

impl JournalEvent {
    /// Stable kind tag (the JSONL `"kind"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEvent::SegmentMatched { .. } => "segment_matched",
            JournalEvent::HoleOpened { .. } => "hole_opened",
            JournalEvent::CandidateConsidered { .. } => "candidate_considered",
            JournalEvent::CandidatesElided { .. } => "candidates_elided",
            JournalEvent::CandidateChosen { .. } => "candidate_chosen",
            JournalEvent::FallbackWalk { .. } => "fallback_walk",
            JournalEvent::HoleUnfilled { .. } => "hole_unfilled",
            JournalEvent::SummaryPrefilter { .. } => "summary_prefilter",
            JournalEvent::CorpusLookup { .. } => "corpus_lookup",
            JournalEvent::LintBreak { .. } => "lint_break",
        }
    }

    /// The event's payload as ordered `(name, value)` pairs — the order
    /// is the wire order and part of the diffable format.
    pub fn fields(&self) -> Vec<(&'static str, FieldVal)> {
        use FieldVal::{Bool, Int, Str};
        match self {
            JournalEvent::SegmentMatched {
                events,
                matched,
                restarts,
                frontier_width,
                candidates_tried,
                candidates_pruned,
                dfa_path,
            } => vec![
                ("events", Int(*events as u64)),
                ("matched", Int(*matched as u64)),
                ("restarts", Int(*restarts as u64)),
                ("frontier_width", Int(*frontier_width as u64)),
                ("candidates_tried", Int(*candidates_tried as u64)),
                ("candidates_pruned", Int(*candidates_pruned as u64)),
                ("dfa_path", Bool(*dfa_path)),
            ],
            JournalEvent::HoleOpened {
                hole,
                first_ts,
                last_ts,
                anchor_len,
                anchor,
                budget,
            } => vec![
                ("hole", Int(*hole as u64)),
                ("first_ts", Int(*first_ts)),
                ("last_ts", Int(*last_ts)),
                ("anchor_len", Int(*anchor_len as u64)),
                ("anchor", Str(anchor.clone())),
                ("budget", Int(*budget)),
            ],
            JournalEvent::CandidateConsidered {
                hole,
                rank,
                cs_segment,
                offset,
                outcome,
                score,
            } => vec![
                ("hole", Int(*hole as u64)),
                ("rank", Int(*rank as u64)),
                ("cs_segment", Int(*cs_segment as u64)),
                ("offset", Int(*offset as u64)),
                ("outcome", Str(outcome.as_str().to_string())),
                ("score", Int(*score as u64)),
            ],
            JournalEvent::CandidatesElided { hole, count } => {
                vec![("hole", Int(*hole as u64)), ("count", Int(*count as u64))]
            }
            JournalEvent::CandidateChosen {
                hole,
                cs_segment,
                offset,
                score,
                runner_up,
                margin,
                fill_len,
                budget,
                truncated,
                confidence_ppm,
            } => vec![
                ("hole", Int(*hole as u64)),
                ("cs_segment", Int(*cs_segment as u64)),
                ("offset", Int(*offset as u64)),
                ("score", Int(*score as u64)),
                ("runner_up", Int(*runner_up as u64)),
                ("margin", Int(*margin as u64)),
                ("fill_len", Int(*fill_len as u64)),
                ("budget", Int(*budget)),
                ("truncated", Bool(*truncated)),
                ("confidence_ppm", Int(*confidence_ppm as u64)),
            ],
            JournalEvent::FallbackWalk {
                hole,
                fill_len,
                confidence_ppm,
            } => vec![
                ("hole", Int(*hole as u64)),
                ("fill_len", Int(*fill_len as u64)),
                ("confidence_ppm", Int(*confidence_ppm as u64)),
            ],
            JournalEvent::HoleUnfilled { hole } => vec![("hole", Int(*hole as u64))],
            JournalEvent::SummaryPrefilter {
                hole,
                considered,
                pruned,
            } => vec![
                ("hole", Int(*hole as u64)),
                ("considered", Int(*considered as u64)),
                ("pruned", Int(*pruned as u64)),
            ],
            JournalEvent::CorpusLookup {
                hole,
                candidates,
                hit,
                cs_segment,
                score,
                fill_len,
                confidence_ppm,
            } => vec![
                ("hole", Int(*hole as u64)),
                ("candidates", Int(*candidates as u64)),
                ("hit", Bool(*hit)),
                ("cs_segment", Int(*cs_segment as u64)),
                ("score", Int(*score as u64)),
                ("fill_len", Int(*fill_len as u64)),
                ("confidence_ppm", Int(*confidence_ppm as u64)),
            ],
            JournalEvent::LintBreak {
                kind,
                index,
                detail,
            } => vec![
                ("break_kind", Str(kind.clone())),
                ("index", Int(*index)),
                ("detail", Str(detail.clone())),
            ],
        }
    }
}

/// One journaled decision: key plus typed event.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Sort key.
    pub key: JournalKey,
    /// The decision.
    pub event: JournalEvent,
}

impl JournalRecord {
    /// One JSON object (no trailing newline) with fixed field order:
    /// key fields, `kind`, then the event payload.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"thread\":{},\"segment\":{},\"seq\":{},\"kind\":",
            self.key.thread, self.key.segment, self.key.seq
        ));
        json::write_escaped(&mut out, self.event.kind());
        for (name, val) in self.event.fields() {
            out.push(',');
            json::write_escaped(&mut out, name);
            out.push(':');
            match val {
                FieldVal::Int(v) => out.push_str(&v.to_string()),
                FieldVal::Bool(v) => out.push_str(if v { "true" } else { "false" }),
                FieldVal::Str(s) => json::write_escaped(&mut out, &s),
            }
        }
        out.push('}');
        out
    }
}

/// Shard count for the record buffers (threads stripe over shards; one
/// short lock per record).
const JOURNAL_SHARDS: usize = 16;

/// Default ring capacity: generous for the seed workloads (a lossy run
/// journals a few thousand records), small enough that a runaway
/// candidate storm cannot take the process down.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 16;

/// The bounded decision journal.
///
/// Thread-safe: producers push concurrently (striped mutexes), the bound
/// is enforced by a lock-free reservation counter, and
/// [`Journal::snapshot`] merges deterministically.
#[derive(Debug)]
pub struct Journal {
    shards: Vec<Mutex<Vec<JournalRecord>>>,
    capacity: usize,
    /// Total push attempts (monotonic; successful reservations are the
    /// first `capacity` of these).
    reserved: AtomicUsize,
    dropped: AtomicU64,
}

impl Journal {
    /// An empty journal with the given capacity.
    pub fn with_capacity(capacity: usize) -> Journal {
        Journal {
            shards: (0..JOURNAL_SHARDS)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            capacity,
            reserved: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// An empty journal with [`DEFAULT_JOURNAL_CAPACITY`].
    pub fn new() -> Journal {
        Journal::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a record, or drops it (counted) when the ring is full.
    ///
    /// Exactly `capacity` pushes ever succeed: each push reserves a
    /// monotonic slot index first, so under any interleaving
    /// `dropped == max(0, total_pushes - capacity)`.
    pub fn record(&self, rec: JournalRecord) {
        if self.reserved.fetch_add(1, Ordering::Relaxed) >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let shard = rec.key.thread as usize % JOURNAL_SHARDS;
        self.shards[shard].lock().unwrap().push(rec);
    }

    /// Records dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deterministically-merged snapshot: records sorted by
    /// `(key, event)` plus the drop counter.
    pub fn snapshot(&self) -> JournalSnapshot {
        let mut records: Vec<JournalRecord> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            records.extend(shard.lock().unwrap().iter().cloned());
        }
        records.sort_by(|a, b| {
            a.key.cmp(&b.key).then_with(|| {
                a.event
                    .partial_cmp(&b.event)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        });
        JournalSnapshot {
            records,
            dropped: self.dropped(),
        }
    }

    /// A recorder handle bound to `thread`. Pass `None` as the journal
    /// to get an inert recorder (disabled observability).
    pub fn recorder(journal: Option<&Journal>, thread: u32) -> JournalRecorder<'_> {
        JournalRecorder {
            journal,
            thread,
            segment: 0,
            seq: 0,
        }
    }
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::new()
    }
}

/// A single-producer emission handle: carries the `(thread, segment)`
/// key context and the intra-key sequence counter. Inert (one branch per
/// emit) when constructed without a journal.
#[derive(Debug)]
pub struct JournalRecorder<'a> {
    journal: Option<&'a Journal>,
    thread: u32,
    segment: u32,
    seq: u32,
}

impl JournalRecorder<'_> {
    /// Whether emits land anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// The thread this recorder journals for.
    pub fn thread(&self) -> u32 {
        self.thread
    }

    /// Switches the key's segment scope and resets the sequence counter.
    pub fn set_segment(&mut self, segment: u32) {
        self.segment = segment;
        self.seq = 0;
    }

    /// Emits one event under the current `(thread, segment)` key.
    #[inline]
    pub fn emit(&mut self, event: JournalEvent) {
        let Some(journal) = self.journal else { return };
        journal.record(JournalRecord {
            key: JournalKey {
                thread: self.thread,
                segment: self.segment,
                seq: self.seq,
            },
            event,
        });
        self.seq += 1;
    }
}

/// A sorted, immutable view of everything journaled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalSnapshot {
    /// Records sorted by `(key, event)`.
    pub records: Vec<JournalRecord>,
    /// Records dropped at the ring bound. A non-zero value means the
    /// record list is truncated (scheduling-dependently so); determinism
    /// claims only hold at zero.
    pub dropped: u64,
}

impl JournalSnapshot {
    /// JSONL export: one record per line, fixed field order, plus a
    /// final `journal_summary` line carrying the drop counter.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.records.len() * 96);
        for rec in &self.records {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out.push_str(&format!(
            "{{\"kind\":\"journal_summary\",\"records\":{},\"dropped\":{}}}\n",
            self.records.len(),
            self.dropped
        ));
        out
    }

    /// Timing-free structure lines (the JSONL lines themselves — the
    /// journal holds no wall-clock data). Byte-identical across
    /// `parallelism` settings when `dropped == 0`.
    pub fn structure(&self) -> Vec<String> {
        self.records.iter().map(JournalRecord::to_json).collect()
    }

    /// Records of one thread.
    pub fn thread(&self, thread: u32) -> impl Iterator<Item = &JournalRecord> {
        self.records.iter().filter(move |r| r.key.thread == thread)
    }

    /// Distinct event kinds present, sorted.
    pub fn kinds(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.records.iter().map(|r| r.event.kind()).collect();
        v.sort();
        v.dedup();
        v
    }
}

/// One line of a journal JSONL file, re-parsed generically (for
/// `jportal-inspect diff` / `explain` over files from any version).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRecord {
    /// `thread` key field (absent on summary lines).
    pub thread: u64,
    /// `segment` key field.
    pub segment: u64,
    /// `seq` key field.
    pub seq: u64,
    /// Event kind tag.
    pub kind: String,
    /// Remaining payload fields, in wire order, values rendered to
    /// strings (`"true"`/`"false"` for booleans).
    pub fields: Vec<(String, String)>,
}

impl ParsedRecord {
    /// The decision identity this line describes: key fields plus kind.
    /// Two runs' records with equal identities are "the same decision
    /// point" for diffing.
    pub fn identity(&self) -> (u64, u64, u64, &str) {
        (self.thread, self.segment, self.seq, &self.kind)
    }

    /// A payload field by name.
    pub fn field(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Compact human rendering: `kind{k=v,...}`.
    pub fn render(&self) -> String {
        let mut s = self.kind.clone();
        s.push('{');
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s.push('}');
        s
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Value::Str(s) => s.clone(),
        Value::Arr(_) | Value::Obj(_) => "<nested>".to_string(),
    }
}

/// Parses a journal JSONL document into generic records (summary lines
/// included, with zeroed key fields). Fails on the first malformed line.
pub fn parse_jsonl(input: &str) -> Result<Vec<ParsedRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let Value::Obj(pairs) = value else {
            return Err(format!("line {}: not a JSON object", lineno + 1));
        };
        let mut rec = ParsedRecord {
            thread: 0,
            segment: 0,
            seq: 0,
            kind: String::new(),
            fields: Vec::new(),
        };
        for (k, v) in pairs {
            match (k.as_str(), &v) {
                ("thread", Value::Num(n)) => rec.thread = *n as u64,
                ("segment", Value::Num(n)) => rec.segment = *n as u64,
                ("seq", Value::Num(n)) => rec.seq = *n as u64,
                ("kind", Value::Str(s)) => rec.kind = s.clone(),
                _ => rec.fields.push((k, render_value(&v))),
            }
        }
        if rec.kind.is_empty() {
            return Err(format!("line {}: missing \"kind\"", lineno + 1));
        }
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg_event(n: u32) -> JournalEvent {
        JournalEvent::SegmentMatched {
            events: n,
            matched: n,
            restarts: 0,
            frontier_width: 2,
            candidates_tried: 5,
            candidates_pruned: 3,
            dfa_path: true,
        }
    }

    #[test]
    fn records_sort_by_key() {
        let j = Journal::new();
        let mut r = Journal::recorder(Some(&j), 1);
        r.set_segment(2);
        r.emit(seg_event(7));
        let mut r0 = Journal::recorder(Some(&j), 0);
        r0.set_segment(5);
        r0.emit(seg_event(3));
        let snap = j.snapshot();
        assert_eq!(snap.records.len(), 2);
        assert_eq!(snap.records[0].key.thread, 0);
        assert_eq!(snap.records[1].key.thread, 1);
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn seq_increments_within_segment_and_resets() {
        let j = Journal::new();
        let mut r = Journal::recorder(Some(&j), 0);
        r.emit(seg_event(1));
        r.emit(seg_event(2));
        r.set_segment(1);
        r.emit(seg_event(3));
        let snap = j.snapshot();
        let seqs: Vec<(u32, u32)> = snap
            .records
            .iter()
            .map(|r| (r.key.segment, r.key.seq))
            .collect();
        assert_eq!(seqs, vec![(0, 0), (0, 1), (1, 0)]);
    }

    #[test]
    fn inert_recorder_emits_nothing() {
        let j = Journal::new();
        {
            let mut r = Journal::recorder(None, 0);
            assert!(!r.is_enabled());
            r.emit(seg_event(1));
        }
        assert!(j.is_empty());
    }

    #[test]
    fn ring_drop_counter_is_exact() {
        let j = Journal::with_capacity(3);
        let mut r = Journal::recorder(Some(&j), 0);
        for i in 0..10 {
            r.emit(seg_event(i));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 7);
        let snap = j.snapshot();
        assert_eq!(snap.records.len(), 3);
        assert_eq!(snap.dropped, 7);
    }

    #[test]
    fn jsonl_round_trips_through_the_strict_parser() {
        let j = Journal::new();
        let mut r = Journal::recorder(Some(&j), 0);
        r.emit(JournalEvent::HoleOpened {
            hole: 1,
            first_ts: 100,
            last_ts: 200,
            anchor_len: 3,
            anchor: "iload·ifeq\"x".to_string(),
            budget: 40,
        });
        r.emit(JournalEvent::CandidateConsidered {
            hole: 1,
            rank: 0,
            cs_segment: 4,
            offset: 17,
            outcome: CandidateOutcome::PrunedTier1,
            score: 2,
        });
        r.emit(JournalEvent::LintBreak {
            kind: "missing-edge".to_string(),
            index: 9,
            detail: "no edge".to_string(),
        });
        let doc = j.snapshot().to_jsonl();
        let parsed = parse_jsonl(&doc).expect("jsonl parses");
        // 3 records + the summary line.
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed[0].kind, "hole_opened");
        assert_eq!(parsed[0].field("anchor"), Some("iload·ifeq\"x"));
        assert_eq!(parsed[1].field("outcome"), Some("pruned_tier1"));
        assert_eq!(parsed[2].field("break_kind"), Some("missing-edge"));
        assert_eq!(parsed[3].kind, "journal_summary");
        assert_eq!(parsed[3].field("dropped"), Some("0"));
        // Identity ties (thread, segment, seq, kind) together.
        assert_eq!(parsed[0].identity(), (0, 0, 0, "hole_opened"));
        assert_eq!(parsed[1].identity(), (0, 0, 1, "candidate_considered"));
    }

    #[test]
    fn concurrent_pushes_keep_the_bound_and_count_exact() {
        let j = Journal::with_capacity(64);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let j = &j;
                s.spawn(move || {
                    let mut r = Journal::recorder(Some(j), t);
                    for i in 0..32 {
                        r.emit(seg_event(i));
                    }
                });
            }
        });
        assert_eq!(j.len(), 64);
        assert_eq!(j.dropped(), 8 * 32 - 64);
    }
}
