//! Wire-format tests for the live telemetry plane: the Prometheus text
//! exposition pinned against a golden file, SSE framing, and a loopback
//! integration test that scrapes a real listener while a producer
//! thread ticks the plane.

use jportal_obs::json::{self, Value};
use jportal_obs::{
    http_get, metrics_snapshot_json, prometheus_text, sse_frame, sse_keepalive_frame,
    MetricsRegistry, Obs, TelemetryConfig, TelemetryPlane, TelemetryServer,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A small deterministic registry exercising every exposition family
/// plus name sanitization and HELP escaping (the backslash in
/// `esc\ape.count` must double in the HELP line, and every
/// non-alphanumeric character must flatten to `_` in the family name).
fn golden_registry() -> MetricsRegistry {
    let reg = MetricsRegistry::new(true);
    reg.counter("decode.packets").add(1234);
    reg.counter("esc\\ape.count").add(1);
    reg.gauge("ring.high-water").set_max(77);
    let h = reg.histogram("h.wall_us");
    h.record(3);
    h.record(900);
    let s = reg.sketch("s.lat_us");
    s.record(40);
    s.record(4000);
    reg
}

#[test]
fn prometheus_text_matches_golden() {
    let text = prometheus_text(&golden_registry().snapshot());
    if std::env::var("REGENERATE_GOLDEN").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
        std::fs::write(path, &text).unwrap();
    }
    let golden = include_str!("golden/metrics.prom");
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted from tests/golden/metrics.prom; if the \
         change is intentional, rerun with REGENERATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn prometheus_histogram_buckets_are_cumulative_and_fold_inf() {
    let text = prometheus_text(&golden_registry().snapshot());
    // No raw u64::MAX upper bound may leak; the overflow bucket is +Inf.
    assert!(!text.contains("18446744073709551615"));
    assert!(text.contains("jportal_h_wall_us_bucket{le=\"+Inf\"} 2"));
    // Cumulative counts never decrease down a family.
    let mut last = 0u64;
    for line in text.lines().filter(|l| l.contains("_bucket{le=")) {
        let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(n >= last, "bucket counts must be cumulative: {line}");
        last = n;
    }
}

#[test]
fn sse_frames_are_terminated_and_ordered() {
    let f = sse_frame(3, "snapshot", "{\"seq\":3}");
    assert!(f.starts_with("id: 3\nevent: snapshot\n"));
    assert!(f.ends_with("\n\n"), "frame must end with a blank line");
    // A multi-line payload becomes one data: line per payload line, so
    // an SSE consumer reassembles the exact document.
    let multi = sse_frame(4, "snapshot", "{\n}");
    let data: Vec<&str> = multi
        .lines()
        .filter_map(|l| l.strip_prefix("data: "))
        .collect();
    assert_eq!(data, ["{", "}"]);
}

#[test]
fn sse_keepalive_is_a_comment_frame() {
    let f = sse_keepalive_frame();
    // Per the SSE spec a line starting with ':' is a comment the client
    // discards; the blank line terminates the (empty) event so buffered
    // parsers flush it without dispatching anything.
    assert!(f.starts_with(':'), "keep-alive must be an SSE comment");
    assert!(f.ends_with("\n\n"), "frame must end with a blank line");
    assert!(
        !f.contains("data:") && !f.contains("id:") && !f.contains("event:"),
        "keep-alive must not carry fields a client would dispatch"
    );
    // Interleaving keep-alives with real frames must not corrupt the
    // stream: splitting on the blank-line terminator recovers both.
    let stream = format!("{}{}", f, sse_frame(9, "snapshot", "{\"seq\":9}"));
    let frames: Vec<&str> = stream.split("\n\n").filter(|s| !s.is_empty()).collect();
    assert_eq!(frames.len(), 2);
    assert!(frames[0].starts_with(':'));
    assert!(frames[1].starts_with("id: 9\n"));
}

/// Sends a raw request head and returns `(status_line, body)`. Used for
/// the negative paths `http_get` cannot produce (non-GET methods,
/// oversized heads).
fn raw_request(addr: &str, head: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // The oversized-head case leaves bytes the server never reads, so
    // its close may RST the connection — tolerate write and trailing
    // read errors and parse whatever response bytes arrived (the
    // response is written before the close, so it is ordered first).
    let _ = stream.write_all(head.as_bytes());
    let mut raw = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
        }
    }
    let text = String::from_utf8_lossy(&raw).to_string();
    let head_end = text.find("\r\n\r\n").expect("response has a head");
    let status = text.lines().next().unwrap().to_string();
    (status, text[head_end + 4..].to_string())
}

/// Every 4xx body is a strict-JSON `{"error": ...}` document so
/// programmatic scrapers never have to parse ad-hoc text.
#[test]
fn error_paths_return_json_4xx() {
    let obs = Obs::new(true);
    let plane = TelemetryPlane::new(obs, TelemetryConfig::default());
    let server = TelemetryServer::bind(Arc::clone(&plane), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    let assert_error = |status: &str, body: &str, code: &str| {
        assert!(
            status.starts_with(&format!("HTTP/1.1 {code}")),
            "expected {code}, got {status}"
        );
        json::validate(body).unwrap_or_else(|e| panic!("error body not strict JSON ({e}): {body}"));
        let doc = json::parse(body).unwrap();
        assert!(
            matches!(doc.get("error"), Some(Value::Str(_))),
            "error body must carry a string `error` key: {body}"
        );
    };

    // Unknown series name.
    let r = http_get(&format!("http://{addr}/series?name=no.such.series")).unwrap();
    assert_eq!(r.status, 404);
    json::validate(&r.body).expect("404 body is strict JSON");

    // Unknown path.
    let r = http_get(&format!("http://{addr}/definitely-not-a-route")).unwrap();
    assert_eq!(r.status, 404);
    json::validate(&r.body).expect("404 body is strict JSON");

    // No profiler attached: profile routes 404 rather than serving an
    // empty document.
    for route in ["/profile/folded", "/profile/flame.svg"] {
        let r = http_get(&format!("http://{addr}{route}")).unwrap();
        assert_eq!(r.status, 404, "{route} without a profiler");
    }

    // POST is not allowed anywhere.
    let (status, body) = raw_request(
        &addr,
        &format!("POST /metrics HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\n\r\n"),
    );
    assert_error(&status, &body, "405");

    // A request head larger than the server's read budget must be
    // rejected cleanly, not silently dropped.
    let huge = format!(
        "GET /metrics?junk={} HTTP/1.1\r\nHost: {addr}\r\n\r\n",
        "x".repeat(16 * 1024)
    );
    let (status, body) = raw_request(&addr, &huge);
    assert_error(&status, &body, "431");

    // Malformed request line.
    let (status, body) = raw_request(&addr, "nonsense\r\n\r\n");
    assert_error(&status, &body, "400");

    server.shutdown();
}

/// Reads the head plus the first SSE frame from `/stream` on a raw
/// socket (`http_get` would block until shutdown: the stream never
/// closes on its own).
fn first_sse_frame(addr: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(format!("GET /stream HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
        .unwrap();
    let mut text = String::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf).expect("stream read");
        assert!(n > 0, "stream closed before the first frame");
        text.push_str(&String::from_utf8_lossy(&buf[..n]));
        if let Some(head_end) = text.find("\r\n\r\n") {
            if let Some(frame_end) = text[head_end + 4..].find("\n\n") {
                return text[head_end + 4..head_end + 4 + frame_end].to_string();
            }
        }
    }
}

/// End-to-end over loopback: a producer thread ticks the plane while a
/// client scrapes every endpoint. Counters may only move up between
/// scrapes, every JSON body must satisfy the strict parser, and the
/// stream endpoint must replay the newest snapshot immediately.
#[test]
fn loopback_scrape_while_producing() {
    let obs = Obs::new(true);
    let plane = TelemetryPlane::new(
        obs.clone(),
        TelemetryConfig {
            deterministic: true,
            ..TelemetryConfig::default()
        },
    );
    let server = TelemetryServer::bind(Arc::clone(&plane), "127.0.0.1:0").unwrap();
    let url = server.url();
    let work = obs.registry().counter("work.items");

    let producer = std::thread::spawn({
        let plane = Arc::clone(&plane);
        let work = work.clone();
        move || {
            for _ in 0..40 {
                work.add(3);
                plane.tick_stage();
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    });

    // Scrape /metrics.json while the producer runs; sampled counter
    // values must be monotone.
    let mut seen = Vec::new();
    while !producer.is_finished() {
        let r = http_get(&format!("{url}/metrics.json")).unwrap();
        assert_eq!(r.status, 200);
        json::validate(&r.body).expect("metrics.json is strict JSON");
        let doc = json::parse(&r.body).unwrap();
        if let Some(v) = doc
            .get("counters")
            .and_then(|c| c.get("work.items"))
            .and_then(Value::as_num)
        {
            seen.push(v as u64);
        }
    }
    producer.join().unwrap();
    assert!(
        seen.windows(2).all(|w| w[0] <= w[1]),
        "mid-run counter regressed: {seen:?}"
    );

    // After the run: every endpoint, final state.
    let snap = plane.latest();
    assert_eq!(snap.seq, 40, "one published snapshot per stage tick");
    let prom = http_get(&format!("{url}/metrics")).unwrap();
    assert_eq!(prom.status, 200);
    assert!(prom.body.contains("jportal_work_items 120"));
    assert_eq!(prom.body, prometheus_text(&snap.metrics));

    let mj = http_get(&format!("{url}/metrics.json")).unwrap();
    assert_eq!(mj.body, metrics_snapshot_json(&snap.metrics));

    let names = http_get(&format!("{url}/series")).unwrap();
    assert!(names.body.contains("\"counter.work.items\""));
    let series = http_get(&format!("{url}/series?name=counter.work.items")).unwrap();
    json::validate(&series.body).unwrap();
    let doc = json::parse(&series.body).unwrap();
    let Some(Value::Arr(points)) = doc.get("points") else {
        panic!("series window has no points: {}", series.body);
    };
    assert_eq!(points.len(), 40);
    // Deterministic plane: ticks are stamped with their logical index.
    let last = points.last().unwrap();
    assert_eq!(last.get("ts").and_then(Value::as_num), Some(39.0));
    assert_eq!(last.get("value").and_then(Value::as_num), Some(120.0));
    assert_eq!(last.get("delta").and_then(Value::as_num), Some(3.0));

    let missing = http_get(&format!("{url}/series?name=nope")).unwrap();
    assert_eq!(missing.status, 404);

    let frame = first_sse_frame(&server.addr().to_string());
    assert!(
        frame.starts_with("id: 40\n"),
        "stream must replay the newest snapshot: {frame}"
    );
    let data = frame
        .lines()
        .find_map(|l| l.strip_prefix("data: "))
        .expect("frame has data");
    json::validate(data).expect("SSE payload is strict JSON");
    let delta = json::parse(data).unwrap();
    assert_eq!(delta.get("seq").and_then(Value::as_num), Some(40.0));
    assert_eq!(
        delta
            .get("deltas")
            .and_then(|d| d.get("counter.work.items"))
            .and_then(Value::as_num),
        Some(3.0)
    );

    // The server records its own traffic through the same plane.
    plane.tick_stage();
    let snap = plane.latest();
    assert!(snap.metrics.counter("obs.serve.requests").unwrap_or(0) >= 7);
    let scrape = snap.metrics.sketch("obs.serve.scrape_us").unwrap();
    assert!(scrape.count >= 1, "scrape latency sketch must be fed");

    server.shutdown();
}
