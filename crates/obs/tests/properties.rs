//! Property tests for the telemetry layer's concurrency and export
//! invariants: sharded counters never lose or double-count updates under
//! any thread/plan mix, histograms conserve count and sum, and both
//! exporters always emit valid JSON.

use proptest::prelude::*;

use jportal_obs::json::validate;
use jportal_obs::{MetricsRegistry, Obs};

proptest! {
    /// Concurrent increments over the sharded counter cells sum exactly:
    /// any split of a plan of additions across up to 8 threads yields the
    /// plain sequential total (no lost updates across shards).
    #[test]
    fn sharded_counter_conserves_additions(
        plan in prop::collection::vec(1u64..100, 1..64),
        threads in 1usize..8,
    ) {
        let reg = MetricsRegistry::new(true);
        let c = reg.counter("t");
        let expected: u64 = plan.iter().sum();
        let chunk = plan.len().div_ceil(threads).max(1);
        std::thread::scope(|s| {
            for part in plan.chunks(chunk) {
                let c = c.clone();
                s.spawn(move || {
                    for &n in part {
                        c.add(n);
                    }
                });
            }
        });
        prop_assert_eq!(c.value(), expected);
        prop_assert_eq!(reg.snapshot().counter("t"), Some(expected));
    }

    /// Histograms conserve observation count and sum across threads, and
    /// bucket counts always add up to the total count.
    #[test]
    fn histogram_conserves_count_and_sum(
        values in prop::collection::vec(0u64..1_000_000, 1..64),
        threads in 1usize..6,
    ) {
        let reg = MetricsRegistry::new(true);
        let h = reg.histogram("v");
        let chunk = values.len().div_ceil(threads).max(1);
        std::thread::scope(|s| {
            for part in values.chunks(chunk) {
                let h = h.clone();
                s.spawn(move || {
                    for &v in part {
                        h.record(v);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        let hs = snap.histogram("v").unwrap();
        prop_assert_eq!(hs.count, values.len() as u64);
        prop_assert_eq!(hs.sum, values.iter().sum::<u64>());
        let bucket_total: u64 = hs.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, hs.count);
        // Every value fits under some reported bucket bound.
        let max_upper = hs.buckets.last().map(|&(u, _)| u).unwrap_or(0);
        prop_assert!(values.iter().all(|&v| v <= max_upper));
    }

    /// Span structure is independent of how work is split over threads:
    /// the same logical set of spans produces the same sorted structure
    /// whether recorded from 1 thread or many.
    #[test]
    fn span_structure_is_thread_independent(
        n in 1usize..32,
        threads in 1usize..6,
    ) {
        let run = |workers: usize| {
            let obs = Obs::new(true);
            let ids: Vec<usize> = (0..n).collect();
            let chunk = n.div_ceil(workers).max(1);
            std::thread::scope(|s| {
                for part in ids.chunks(chunk) {
                    let obs = obs.clone();
                    s.spawn(move || {
                        for &i in part {
                            let _g = obs
                                .span("work", "unit")
                                .arg("i", i)
                                .parent("root");
                        }
                    });
                }
            });
            obs.telemetry().span_structure()
        };
        prop_assert_eq!(run(1), run(threads));
    }

    /// Whatever ends up in a report, both exporters emit valid JSON and
    /// every counter value survives into the flat snapshot document.
    #[test]
    fn exporters_always_emit_valid_json(
        counters in prop::collection::vec((0usize..6, 1u64..1000), 0..24),
        record in prop::collection::vec(0u64..10_000, 0..16),
    ) {
        let obs = Obs::new(true);
        let names = ["a", "b.c", "d-e", "f g", "h\"i", "j\\k"];
        for &(which, v) in &counters {
            obs.registry().counter(names[which]).add(v);
        }
        let h = obs.registry().histogram("hist");
        for &v in &record {
            h.record(v);
        }
        {
            let _s = obs.span("cat", "name").arg("v", 1u64);
        }
        let report = obs.telemetry();
        prop_assert!(validate(&report.chrome_trace_json()).is_ok());
        prop_assert!(validate(&report.metrics_json()).is_ok());
        for (name, v) in &report.metrics.counters {
            prop_assert_eq!(report.metrics.counter(name), Some(*v));
        }
    }

    /// Sketch merge is associative and order-independent: merging
    /// per-shard snapshots in any grouping reproduces the snapshot of
    /// one sketch that saw every value (merge is exact bucket-wise
    /// addition, so this is equality, not approximation).
    #[test]
    fn sketch_merge_is_associative(
        a in prop::collection::vec(0u64..1_000_000, 0..48),
        b in prop::collection::vec(0u64..1_000_000, 0..48),
        c in prop::collection::vec(0u64..1_000_000, 0..48),
    ) {
        let shard = |values: &[u64]| {
            let reg = MetricsRegistry::new(true);
            let s = reg.sketch("s");
            for &v in values {
                s.record(v);
            }
            reg.snapshot().sketch("s").unwrap().clone()
        };
        let (sa, sb, sc) = (shard(&a), shard(&b), shard(&c));
        // (a ⊔ b) ⊔ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊔ (b ⊔ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // Both equal the unsharded whole.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let whole = shard(&all);
        if whole.count > 0 {
            prop_assert_eq!(&left, &whole);
        }
    }

    /// Merging an empty sketch is the identity: count, sum, min/max and
    /// every quantile are untouched, and the merge in the other
    /// direction reproduces the non-empty side exactly.
    #[test]
    fn sketch_merge_empty_is_identity(
        values in prop::collection::vec(0u64..1_000_000, 1..64),
    ) {
        let shard = |values: &[u64]| {
            let reg = MetricsRegistry::new(true);
            let s = reg.sketch("s");
            for &v in values {
                s.record(v);
            }
            reg.snapshot().sketch("s").unwrap().clone()
        };
        let full = shard(&values);
        let empty = shard(&[]);
        prop_assert_eq!(empty.count, 0);

        let mut merged = full.clone();
        merged.merge(&empty);
        prop_assert_eq!(&merged, &full, "rhs empty must be the identity");
        prop_assert_eq!(merged.quantile(0.0), *values.iter().min().unwrap());
        prop_assert_eq!(merged.quantile(1.0), *values.iter().max().unwrap());

        let mut adopted = empty.clone();
        adopted.merge(&full);
        prop_assert_eq!(&adopted, &full, "empty lhs must adopt rhs wholesale");
    }

    /// Merging sketches over disjoint octave ranges (one fed small
    /// values, one fed values ~2^16 larger, so no bucket overlaps)
    /// equals the sketch that saw both populations, and the extremes
    /// come from the respective sides.
    #[test]
    fn sketch_merge_disjoint_octaves_matches_combined(
        low in prop::collection::vec(1u64..256, 1..32),
        high in prop::collection::vec(1u64..256, 1..32),
    ) {
        let shard = |values: &[u64]| {
            let reg = MetricsRegistry::new(true);
            let s = reg.sketch("s");
            for &v in values {
                s.record(v);
            }
            reg.snapshot().sketch("s").unwrap().clone()
        };
        let high: Vec<u64> = high.iter().map(|&v| v << 16).collect();
        let mut merged = shard(&low);
        merged.merge(&shard(&high));
        let all: Vec<u64> = low.iter().chain(&high).copied().collect();
        prop_assert_eq!(&merged, &shard(&all));
        prop_assert_eq!(merged.count, (low.len() + high.len()) as u64);
        prop_assert_eq!(merged.quantile(0.0), *low.iter().min().unwrap());
        prop_assert_eq!(merged.quantile(1.0), *high.iter().max().unwrap());
    }

    /// Sketch quantiles stay within the documented relative error bound
    /// (1/32, the half-width of a log-linear bucket) of a sorted-oracle
    /// quantile at the same rank, at every probed q.
    #[test]
    fn sketch_quantiles_meet_rank_error_bound(
        values in prop::collection::vec(0u64..50_000_000, 1..128),
    ) {
        let mut values = values;
        let reg = MetricsRegistry::new(true);
        let s = reg.sketch("lat");
        for &v in &values {
            s.record(v);
        }
        let snap = reg.snapshot();
        let sk = snap.sketch("lat").unwrap();
        values.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.9, 0.99] {
            // Same rank convention as SketchSnapshot::quantile.
            let target = (q * values.len() as f64).ceil().max(1.0) as usize;
            let oracle = values[target - 1];
            let est = sk.quantile(q);
            let bound = oracle / 32 + 1;
            prop_assert!(
                est.abs_diff(oracle) <= bound,
                "q={q}: estimate {est} vs oracle {oracle} (bound {bound})"
            );
        }
        prop_assert_eq!(sk.quantile(0.0), values[0]);
        prop_assert_eq!(sk.quantile(1.0), *values.last().unwrap());
    }
}
