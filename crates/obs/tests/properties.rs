//! Property tests for the telemetry layer's concurrency and export
//! invariants: sharded counters never lose or double-count updates under
//! any thread/plan mix, histograms conserve count and sum, and both
//! exporters always emit valid JSON.

use proptest::prelude::*;

use jportal_obs::json::validate;
use jportal_obs::{MetricsRegistry, Obs};

proptest! {
    /// Concurrent increments over the sharded counter cells sum exactly:
    /// any split of a plan of additions across up to 8 threads yields the
    /// plain sequential total (no lost updates across shards).
    #[test]
    fn sharded_counter_conserves_additions(
        plan in prop::collection::vec(1u64..100, 1..64),
        threads in 1usize..8,
    ) {
        let reg = MetricsRegistry::new(true);
        let c = reg.counter("t");
        let expected: u64 = plan.iter().sum();
        let chunk = plan.len().div_ceil(threads).max(1);
        std::thread::scope(|s| {
            for part in plan.chunks(chunk) {
                let c = c.clone();
                s.spawn(move || {
                    for &n in part {
                        c.add(n);
                    }
                });
            }
        });
        prop_assert_eq!(c.value(), expected);
        prop_assert_eq!(reg.snapshot().counter("t"), Some(expected));
    }

    /// Histograms conserve observation count and sum across threads, and
    /// bucket counts always add up to the total count.
    #[test]
    fn histogram_conserves_count_and_sum(
        values in prop::collection::vec(0u64..1_000_000, 1..64),
        threads in 1usize..6,
    ) {
        let reg = MetricsRegistry::new(true);
        let h = reg.histogram("v");
        let chunk = values.len().div_ceil(threads).max(1);
        std::thread::scope(|s| {
            for part in values.chunks(chunk) {
                let h = h.clone();
                s.spawn(move || {
                    for &v in part {
                        h.record(v);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        let hs = snap.histogram("v").unwrap();
        prop_assert_eq!(hs.count, values.len() as u64);
        prop_assert_eq!(hs.sum, values.iter().sum::<u64>());
        let bucket_total: u64 = hs.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, hs.count);
        // Every value fits under some reported bucket bound.
        let max_upper = hs.buckets.last().map(|&(u, _)| u).unwrap_or(0);
        prop_assert!(values.iter().all(|&v| v <= max_upper));
    }

    /// Span structure is independent of how work is split over threads:
    /// the same logical set of spans produces the same sorted structure
    /// whether recorded from 1 thread or many.
    #[test]
    fn span_structure_is_thread_independent(
        n in 1usize..32,
        threads in 1usize..6,
    ) {
        let run = |workers: usize| {
            let obs = Obs::new(true);
            let ids: Vec<usize> = (0..n).collect();
            let chunk = n.div_ceil(workers).max(1);
            std::thread::scope(|s| {
                for part in ids.chunks(chunk) {
                    let obs = obs.clone();
                    s.spawn(move || {
                        for &i in part {
                            let _g = obs
                                .span("work", "unit")
                                .arg("i", i)
                                .parent("root");
                        }
                    });
                }
            });
            obs.telemetry().span_structure()
        };
        prop_assert_eq!(run(1), run(threads));
    }

    /// Whatever ends up in a report, both exporters emit valid JSON and
    /// every counter value survives into the flat snapshot document.
    #[test]
    fn exporters_always_emit_valid_json(
        counters in prop::collection::vec((0usize..6, 1u64..1000), 0..24),
        record in prop::collection::vec(0u64..10_000, 0..16),
    ) {
        let obs = Obs::new(true);
        let names = ["a", "b.c", "d-e", "f g", "h\"i", "j\\k"];
        for &(which, v) in &counters {
            obs.registry().counter(names[which]).add(v);
        }
        let h = obs.registry().histogram("hist");
        for &v in &record {
            h.record(v);
        }
        {
            let _s = obs.span("cat", "name").arg("v", 1u64);
        }
        let report = obs.telemetry();
        prop_assert!(validate(&report.chrome_trace_json()).is_ok());
        prop_assert!(validate(&report.metrics_json()).is_ok());
        for (name, v) in &report.metrics.counters {
            prop_assert_eq!(report.metrics.counter(name), Some(*v));
        }
    }
}
