//! JPortal — precise and efficient control-flow tracing for JVM programs
//! with (simulated) Intel Processor Trace.
//!
//! Facade crate re-exporting the workspace's public API. See the README for
//! the architecture overview and `DESIGN.md` for the paper-to-module map.

pub use jportal_analysis as analysis;
pub use jportal_bytecode as bytecode;
pub use jportal_cfg as cfg;
pub use jportal_core as core;
pub use jportal_corpus as corpus;
pub use jportal_ipt as ipt;
pub use jportal_jvm as jvm;
pub use jportal_obs as obs;
pub use jportal_profilers as profilers;
pub use jportal_workloads as workloads;
