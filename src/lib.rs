//! JPortal — precise and efficient control-flow tracing for JVM programs
//! with (simulated) Intel Processor Trace.
//!
//! Facade crate re-exporting the workspace's public API. See the README for
//! the architecture overview and `DESIGN.md` for the paper-to-module map.
//!
//! # Live telemetry
//!
//! Build the analyzer with `JPortalConfig { telemetry: Some(..), .. }`,
//! bind a [`TelemetryServer`] on its plane, and scrape `/metrics`,
//! `/metrics.json`, `/series?name=..` or `/stream` while analyses run
//! (see DESIGN.md §17 and `examples/telemetry_live.rs`):
//!
//! ```no_run
//! use jportal::core::{JPortal, JPortalConfig};
//! use jportal::obs::{TelemetryConfig, TelemetryServer};
//! # fn demo(program: &jportal::bytecode::Program) {
//! let jp = JPortal::with_config(
//!     program,
//!     JPortalConfig {
//!         telemetry: Some(TelemetryConfig::default()),
//!         ..JPortalConfig::default()
//!     },
//! );
//! let plane = jp.telemetry_plane().unwrap().clone();
//! let server = TelemetryServer::bind(plane, "127.0.0.1:0").unwrap();
//! println!("scrape {}/metrics", server.url());
//! # }
//! ```

pub use jportal_analysis as analysis;
pub use jportal_bytecode as bytecode;
pub use jportal_cfg as cfg;
pub use jportal_core as core;
pub use jportal_corpus as corpus;
pub use jportal_ipt as ipt;
pub use jportal_jvm as jvm;
pub use jportal_obs as obs;
pub use jportal_profilers as profilers;
pub use jportal_workloads as workloads;

pub use jportal_obs::{
    ContentionCounter, ProfileConfig, ProfileSnapshot, Profiler, TelemetryConfig, TelemetryPlane,
    TelemetryServer,
};
